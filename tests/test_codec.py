"""Packed-tensor codec conformance: bit-exact round trips + footprint.

Three layers:

* **Round-trip property** — for every catalog format and both operand
  paths, ``decode(encode(x))`` equals the format's own kernel-dispatched
  quantize output *bit for bit* (``tobytes`` equality, so -0.0 counts),
  including zero tensors, negative zeros, padding of partial groups and
  non-default axes, under fast / reference / bittwiddle dispatch.
* **Footprint** — on group-aligned tensors the packed payload costs the
  format's nominal EBW per element (within per-stream byte rounding),
  with the two documented exceptions pinned exactly: Elem-EE stores a
  3-bit refined code per subgroup, M2-NVFP4 weights a 2-bit bias code
  per group.
* **Golden packed bytes** — the serialized m2xfp / m2-nvfp4 containers
  are pinned in ``tests/golden/packed_vectors.json`` (regen via
  ``scripts/regen_packed_vectors.py --regen``); any header, stream-order
  or bit-packing drift fails here first.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.codec import PackedTensor, decode, encode
from repro.errors import CodecError
from repro.kernels import fast_kernels, reference_kernels
from repro.kernels.dispatch import BITTWIDDLE_ENV
from repro.runner.formats import FORMAT_REGISTRY, make_format

GOLDEN_PATH = Path(__file__).parent / "golden" / "packed_vectors.json"

ALL_FORMATS = sorted(FORMAT_REGISTRY)

#: Formats re-checked under the non-default dispatch modes (the adaptive
#: searches and metadata paths where codes could plausibly drift).
DISPATCH_SUBSET = ("mxfp4", "nvfp4", "smx4", "msfp12", "elem-em", "elem-ee",
                   "sg-em", "sg-ee", "m2xfp", "m2-nvfp4", "mxfp4-maxkeep")


@contextmanager
def _bittwiddle_kernels():
    old = os.environ.get(BITTWIDDLE_ENV)
    os.environ[BITTWIDDLE_ENV] = "1"
    try:
        with fast_kernels():
            yield
    finally:
        if old is None:
            os.environ.pop(BITTWIDDLE_ENV, None)
        else:
            os.environ[BITTWIDDLE_ENV] = old


DISPATCH = {"fast": fast_kernels, "reference": reference_kernels,
            "bittwiddle": _bittwiddle_kernels}


def _reference_output(fmt, x, op, axis=-1):
    if op == "weight":
        return np.asarray(fmt.quantize_weight(x, axis=axis), dtype=np.float64)
    return np.asarray(fmt.quantize_activation(x, axis=axis), dtype=np.float64)


def _assert_roundtrip(fmt, x, op, axis=-1):
    expect = _reference_output(fmt, x, op, axis)
    pt = encode(fmt, x, op=op, axis=axis)
    # Through the full byte container, not just the in-memory object.
    out = decode(PackedTensor.from_bytes(pt.to_bytes()))
    assert out.shape == expect.shape
    assert out.tobytes() == expect.tobytes(), \
        f"{fmt!r} {op} round-trip not bit-exact"
    return pt


# ----------------------------------------------------------------------
# Round-trip property over the whole catalog
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_FORMATS)
@pytest.mark.parametrize("op", ["weight", "activation"])
def test_roundtrip_every_format(name, op, heavy_tensor):
    _assert_roundtrip(make_format(name), heavy_tensor, op)


@pytest.mark.parametrize("name", ALL_FORMATS)
def test_roundtrip_adversarial_inputs(name, rng):
    fmt = make_format(name)
    cases = {
        "zeros": np.zeros((3, 64)),
        "negzero": -(rng.random((2, 64)) < 0.5).astype(np.float64) * 0.0,
        "padding": rng.standard_normal((5, 50)),       # partial trailing group
        "1d": rng.standard_normal(70),
        "outliers": rng.standard_normal((4, 64)) * np.exp(
            3 * rng.standard_normal((4, 64))),
    }
    for x in cases.values():
        _assert_roundtrip(fmt, x, "activation")


@pytest.mark.parametrize("name", ["m2xfp", "mxfp4", "nvfp4", "smx4"])
def test_roundtrip_axis0(name, rng):
    x = rng.standard_normal((64, 7))
    _assert_roundtrip(make_format(name), x, "weight", axis=0)


@pytest.mark.parametrize("dispatch", sorted(DISPATCH))
@pytest.mark.parametrize("name", DISPATCH_SUBSET)
def test_roundtrip_dispatch_modes(name, dispatch, heavy_tensor):
    with DISPATCH[dispatch]():
        fmt = make_format(name)
        for op in ("weight", "activation"):
            _assert_roundtrip(fmt, heavy_tensor, op)


def test_fp16_representable_input_uses_16_bits(rng):
    x = rng.standard_normal((8, 32)).astype(np.float16).astype(np.float64)
    pt = _assert_roundtrip(make_format("fp16"), x, "activation")
    assert pt.extra["storage"] == "f16"
    assert pt.bits_per_element == 16.0


# ----------------------------------------------------------------------
# Footprint: measured payload vs nominal EBW
# ----------------------------------------------------------------------
#: Documented bits-per-element overhead beyond the nominal EBW, exact on
#: group-aligned tensors (see repro/codec/codecs.py module docstring).
FOOTPRINT_EXEMPTIONS = {
    ("elem-ee", "weight"): 3 * 4 / 32,       # 3-bit refined code / subgroup
    ("elem-ee", "activation"): 3 * 4 / 32,
    ("m2-nvfp4", "weight"): 2 / 16,          # 2-bit bias code / group
}


@pytest.mark.parametrize("name", [n for n in ALL_FORMATS if n != "fp16"])
@pytest.mark.parametrize("op", ["weight", "activation"])
def test_payload_matches_nominal_ebw(name, op, rng):
    fmt = make_format(name)
    x = rng.standard_normal((12, 96))      # 96 = lcm of group sizes 32/16
    pt = _assert_roundtrip(fmt, x, op)
    nominal = fmt.weight_ebw if op == "weight" else fmt.activation_ebw
    exempt = FOOTPRINT_EXEMPTIONS.get((name, op), 0.0)
    # Per-stream byte rounding can waste at most 7 bits per stream.
    slack = 7 * len(pt.streams) / pt.n_elements
    assert pt.bits_per_element <= nominal + exempt + slack, \
        (pt.bits_per_element, nominal, exempt)
    # The payload really is low-bit: it can't undercut the element bits.
    assert pt.bits_per_element >= nominal - 1.0
    # "Within one header" end to end: total = payload + one small header.
    assert pt.total_bytes == pt.payload_bytes + pt.header_bytes
    assert pt.header_bytes < 600


def test_fp16_nominal_on_representable_data(rng):
    x = rng.standard_normal((12, 96)).astype(np.float16).astype(np.float64)
    pt = encode(make_format("fp16"), x)
    assert pt.bits_per_element == 16.0


# ----------------------------------------------------------------------
# Container plumbing and error paths
# ----------------------------------------------------------------------
def test_container_header_is_self_describing(heavy_tensor):
    fmt = make_format("m2xfp")
    pt = encode(fmt, heavy_tensor, op="weight")
    blob = pt.to_bytes()
    back = PackedTensor.from_bytes(blob)
    assert back.format_name == "m2xfp"
    assert back.fingerprint == repr(fmt)
    assert back.op == "weight"
    assert back.shape == heavy_tensor.shape
    assert back.group_size == 32
    assert back.to_bytes() == blob       # serialization is a fixed point


def test_bad_magic_and_truncation_raise():
    with pytest.raises(CodecError):
        PackedTensor.from_bytes(b"NOPE" + b"\0" * 16)
    fmt = make_format("mxfp4")
    blob = encode(fmt, np.ones((2, 32))).to_bytes()
    with pytest.raises(CodecError):
        PackedTensor.from_bytes(blob[:len(blob) - 3])


def test_fingerprint_mismatch_raises(rng):
    x = rng.standard_normal((2, 32))
    pt = encode(make_format("mxfp4"), x)
    with pytest.raises(CodecError):
        decode(pt, fmt=make_format("mxfp8-e4m3"))


def test_bad_op_raises(rng):
    with pytest.raises(CodecError):
        encode(make_format("mxfp4"), rng.standard_normal((2, 32)), op="bogus")


def test_verify_flag_roundtrips(rng):
    encode(make_format("sg-ee"), rng.standard_normal((4, 64)),
           op="weight", verify=True)


# ----------------------------------------------------------------------
# Golden packed bytes (wire-format conformance)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def packed_golden() -> dict:
    assert GOLDEN_PATH.exists(), \
        "golden packed vectors missing; run scripts/regen_packed_vectors.py --regen"
    with open(GOLDEN_PATH) as f:
        return json.load(f)


@pytest.mark.parametrize("dispatch", sorted(DISPATCH))
def test_packed_bytes_pinned(packed_golden, dispatch):
    x = np.array([float.fromhex(v) for v in packed_golden["input_hex"]],
                 dtype=np.float64).reshape(packed_golden["shape"])
    with DISPATCH[dispatch]():
        for key, case in sorted(packed_golden["cases"].items()):
            fmt = make_format(case["format"])
            pt = encode(fmt, x, op=case["op"])
            got = pt.to_bytes().hex()
            assert got == case["packed_hex"], \
                f"{key}: container bytes drifted under {dispatch} dispatch"
            expect = np.array([float.fromhex(v) for v in case["decoded_hex"]])
            assert decode(pt).ravel().tobytes() == expect.tobytes(), \
                f"{key}: decoded values drifted"


# ----------------------------------------------------------------------
# Bitstream fast paths (aligned 4 / 8 / 16 + word-built odd widths)
# ----------------------------------------------------------------------
class TestBitstreamFastPaths:
    """The nibble/byte/uint16 paths and the word-accumulator paths for
    the odd sub-byte widths (3/5/6-bit element streams) must emit the
    generic path's bytes."""

    @pytest.mark.parametrize("width", [3, 4, 5, 6, 8, 16])
    @pytest.mark.parametrize("count", [0, 1, 2, 3, 7, 8, 255, 4097])
    def test_pack_matches_generic(self, width, count):
        from repro.codec.bitstream import _pack_bits_generic, pack_bits

        values = np.random.default_rng(width * 1000 + count).integers(
            0, 1 << width, count)
        fast = pack_bits(values, width)
        if count:
            generic = _pack_bits_generic(
                np.asarray(values, dtype=np.int64).reshape(-1), width)
            assert fast.tobytes() == generic.tobytes()
        assert fast.dtype == np.uint8

    @pytest.mark.parametrize("width", [3, 4, 5, 6, 8, 16])
    @pytest.mark.parametrize("count", [0, 1, 3, 8, 255, 4097])
    def test_unpack_inverts_pack(self, width, count):
        from repro.codec.bitstream import pack_bits, unpack_bits

        values = np.random.default_rng(width * 77 + count).integers(
            0, 1 << width, count)
        blob = pack_bits(values, width).tobytes()
        back = unpack_bits(blob, width, count)
        assert np.array_equal(back, values)
        assert back.dtype == np.int64

    @pytest.mark.parametrize("width", [3, 4, 5, 6, 8, 16])
    def test_unpack_matches_generic(self, width):
        from repro.codec.bitstream import (_unpack_bits_generic, pack_bits,
                                           unpack_bits)

        count = 1001
        values = np.random.default_rng(width).integers(0, 1 << width, count)
        raw = np.frombuffer(pack_bits(values, width).tobytes(), dtype=np.uint8)
        fast = unpack_bits(raw, width, count)
        generic = _unpack_bits_generic(raw, width, count)
        assert np.array_equal(fast, generic)

    def test_width4_odd_count_zero_pads_high_nibble(self):
        from repro.codec.bitstream import pack_bits

        blob = pack_bits(np.array([0xF, 0xF, 0xF]), 4)
        assert blob.tolist() == [0xFF, 0x0F]
