"""Golden-vector conformance: pinned encodings for every format.

``tests/golden/quant_vectors.json`` (written by
``scripts/regen_golden_vectors.py --regen``) commits adversarial inputs
together with their exact expected codes and decoded bit patterns. This
suite recomputes everything from the committed *inputs* and compares
bit-for-bit, under all three kernel dispatch modes — any silent encoding
drift (a rounding change, a scale-rule tweak, a kernel bug) fails tier-1
with the first diverging value.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.core import elem_em_encode, sg_em_encode
from repro.formats.registry import SCALAR_FORMATS
from repro.kernels import fast_kernels, reference_kernels
from repro.kernels.dispatch import BITTWIDDLE_ENV
from repro.runner.formats import make_format

GOLDEN_PATH = Path(__file__).parent / "golden" / "quant_vectors.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), \
        "golden vectors missing; run scripts/regen_golden_vectors.py --regen"
    with open(GOLDEN_PATH) as f:
        return json.load(f)


@contextmanager
def _bittwiddle_kernels():
    old = os.environ.get(BITTWIDDLE_ENV)
    os.environ[BITTWIDDLE_ENV] = "1"
    try:
        with fast_kernels():
            yield
    finally:
        if old is None:
            os.environ.pop(BITTWIDDLE_ENV, None)
        else:
            os.environ[BITTWIDDLE_ENV] = old


DISPATCH = {"fast": fast_kernels, "reference": reference_kernels,
            "bittwiddle": _bittwiddle_kernels}


@pytest.fixture(params=sorted(DISPATCH))
def dispatch(request):
    with DISPATCH[request.param]():
        yield request.param


def _unhex(values, shape=None) -> np.ndarray:
    a = np.array([float.fromhex(v) for v in values], dtype=np.float64)
    return a.reshape(shape) if shape is not None else a


def _assert_hex_equal(actual: np.ndarray, expected_hex: list, what: str):
    actual = np.asarray(actual, dtype=np.float64).ravel()
    expected = _unhex(expected_hex)
    # Bit-exact comparison, treating -0.0 != 0.0 as a real difference.
    mismatch = actual.tobytes() != expected.tobytes()
    if mismatch:
        idx = np.flatnonzero(~(actual == expected) |
                             (np.signbit(actual) != np.signbit(expected)))
        i = int(idx[0]) if idx.size else 0
        raise AssertionError(
            f"{what}: first mismatch at flat index {i}: "
            f"got {actual[i]!r} ({float(actual[i]).hex()}), "
            f"expected {expected[i]!r} ({float(expected[i]).hex()})")


def test_golden_file_committed(golden):
    assert set(golden) >= {"scalar", "tensor", "metadata"}
    assert golden["scalar"] and golden["tensor"] and golden["metadata"]


@pytest.mark.parametrize("spec_name", sorted(SCALAR_FORMATS))
def test_scalar_codes_pinned(golden, spec_name, dispatch):
    case = golden["scalar"][spec_name]
    spec = SCALAR_FORMATS[spec_name]
    x = _unhex(case["input_hex"])
    sign, mag = spec.encode(x)
    assert sign.ravel().tolist() == case["sign"], f"{spec_name}: sign drift"
    assert mag.ravel().tolist() == case["mag"], f"{spec_name}: code drift"
    _assert_hex_equal(spec.decode(sign, mag), case["decoded_hex"],
                      f"{spec_name} decode")


def test_tensor_formats_pinned(golden, dispatch):
    for name, case in sorted(golden["tensor"].items()):
        fmt = make_format(name)
        x = _unhex(case["input_hex"], tuple(case["shape"]))
        _assert_hex_equal(fmt.quantize_weight(x, axis=-1),
                          case["weight_hex"], f"{name} weight path")
        _assert_hex_equal(fmt.quantize_activation(x, axis=-1),
                          case["activation_hex"], f"{name} activation path")


def test_elem_em_metadata_pinned(golden, dispatch):
    case = golden["metadata"]["elem_em"]
    g = _unhex(case["input_hex"], tuple(case["shape"]))
    enc = elem_em_encode(g, sub_size=case["sub_size"], top_k=case["top_k"],
                         scale_rule=case["scale_rule"])
    assert enc.sign_codes.ravel().tolist() == case["sign"]
    assert enc.mag_codes.ravel().tolist() == case["mag"]
    assert enc.scale_exponents.ravel().tolist() == case["scale_exponents"]
    assert enc.metadata.ravel().tolist() == case["meta"], \
        "Elem-EM 2-bit metadata drift"


def test_sg_em_metadata_pinned(golden, dispatch):
    case = golden["metadata"]["sg_em"]
    g = _unhex(case["input_hex"], tuple(case["shape"]))
    enc = sg_em_encode(g, sub_size=case["sub_size"],
                       adaptive=case["adaptive"],
                       scale_rule=case["scale_rule"])
    assert enc.sign_codes.ravel().tolist() == case["sign"]
    assert enc.mag_codes.ravel().tolist() == case["mag"]
    assert enc.scale_exponents.ravel().tolist() == case["scale_exponents"]
    assert enc.sg_codes.ravel().tolist() == case["sg_codes"], \
        "Sg-EM 2-bit multiplier code drift"
