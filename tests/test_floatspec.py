"""Unit tests for the parameterized mini-float grids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import (BF16, FP4_E2M1, FP6_E2M3, FP6_E3M2, FP8_E4M3,
                           FP8_E5M2, FP16, FloatSpec, quantize_to_grid)


class TestGrids:
    def test_fp4_grid_matches_spec(self):
        assert FP4_E2M1.grid.tolist() == [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]

    def test_fp4_constants(self):
        assert FP4_E2M1.max_value == 6.0
        assert FP4_E2M1.max_pow2 == 4.0
        assert FP4_E2M1.total_bits == 4

    def test_fp6_grid_head_and_max(self):
        assert FP6_E2M3.grid[:5].tolist() == [0.0, 0.125, 0.25, 0.375, 0.5]
        assert FP6_E2M3.max_value == 7.5
        assert FP6_E2M3.total_bits == 6

    def test_fp6_codes_extend_fp4_codes(self):
        # Every FP4 magnitude code c corresponds to FP6 code c << 2 with the
        # same value — the property the Alg. 1 encoding depends on.
        for c, v in enumerate(FP4_E2M1.grid):
            assert FP6_E2M3.grid[c << 2] == v

    def test_e4m3_max_is_448(self):
        assert FP8_E4M3.max_value == 448.0

    def test_e5m2_max_is_57344(self):
        assert FP8_E5M2.max_value == 57344.0

    def test_fp16_max(self):
        assert FP16.max_value == 65504.0

    def test_bf16_covers_huge_range(self):
        assert BF16.max_value > 1e38

    def test_e3m2_is_range_heavy(self):
        assert FP6_E3M2.max_value > FP6_E2M3.max_value

    def test_grid_strictly_increasing(self):
        for spec in (FP4_E2M1, FP6_E2M3, FP8_E4M3, FP16):
            assert np.all(np.diff(spec.grid) > 0)

    def test_invalid_spec_rejected(self):
        with pytest.raises(FormatError):
            FloatSpec("bad", exp_bits=0, man_bits=0, bias=0)
        with pytest.raises(FormatError):
            FloatSpec("bad", exp_bits=2, man_bits=1, bias=1, reserved_top_codes=8)


class TestQuantization:
    def test_exact_values_unchanged(self):
        x = np.array([0.0, 0.5, 1.5, -3.0, 6.0, -6.0])
        assert np.array_equal(FP4_E2M1.quantize(x), x)

    def test_saturation(self):
        assert FP4_E2M1.quantize(np.array([100.0]))[0] == 6.0
        assert FP4_E2M1.quantize(np.array([-100.0]))[0] == -6.0

    def test_rtne_tie_between_2_and_3(self):
        # 2.5 is the midpoint of 2 (code 4, even) and 3 (code 5, odd).
        assert FP4_E2M1.quantize(np.array([2.5]))[0] == 2.0

    def test_rtne_tie_between_4_and_6(self):
        # 5.0 ties between 4 (code 6, even) and 6 (code 7, odd) -> 4.
        assert FP4_E2M1.quantize(np.array([5.0]))[0] == 4.0

    def test_rtne_tie_between_1_and_1p5(self):
        # 1.25 ties between 1.0 (code 2, even) and 1.5 (code 3) -> 1.0.
        assert FP4_E2M1.quantize(np.array([1.25]))[0] == 1.0

    def test_nearest_rounding(self):
        assert FP4_E2M1.quantize(np.array([2.4]))[0] == 2.0
        assert FP4_E2M1.quantize(np.array([2.6]))[0] == 3.0

    def test_sign_preserved(self):
        x = np.array([-1.4, 1.4])
        q = FP4_E2M1.quantize(x)
        assert q[0] == -q[1]

    def test_encode_decode_roundtrip(self, rng):
        x = rng.standard_normal(1000) * 3
        sign, codes = FP4_E2M1.encode(x)
        assert np.array_equal(FP4_E2M1.decode(sign, codes), FP4_E2M1.quantize(x))

    def test_packed_codes_roundtrip(self, rng):
        x = rng.standard_normal(500) * 2
        packed = FP4_E2M1.packed_codes(x)
        assert np.array_equal(FP4_E2M1.value_of_code(packed), FP4_E2M1.quantize(x))

    def test_decode_rejects_bad_codes(self):
        with pytest.raises(FormatError):
            FP4_E2M1.decode(np.array([0]), np.array([8]))

    def test_quantize_to_grid_indices(self):
        grid = np.array([0.0, 1.0, 2.0, 4.0])
        assert quantize_to_grid(np.array([0.4, 0.6, 3.1, 99.0]), grid).tolist() == \
            [0, 1, 3, 3]

    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, v):
        q1 = FP4_E2M1.quantize(np.array([v]))
        q2 = FP4_E2M1.quantize(q1)
        assert np.array_equal(q1, q2)

    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_result_on_grid_and_nearest(self, v):
        q = float(FP6_E2M3.quantize(np.array([v]))[0])
        assert abs(q) in FP6_E2M3.grid
        # No other grid point is strictly closer.
        dists = np.abs(np.concatenate([FP6_E2M3.grid, -FP6_E2M3.grid]) - v)
        assert abs(q - v) <= dists.min() + 1e-12

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, vals):
        x = np.sort(np.asarray(vals))
        q = FP4_E2M1.quantize(x)
        assert np.all(np.diff(q) >= 0)
