"""Tests for the hybrid M2XFP format and the packed memory layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (M2NVFP4, M2XFP, elem_em_decode, elem_em_encode,
                        m2xfp, pack_elem_em, pack_fields, pack_nibbles,
                        pack_sg_em, sg_em_decode, sg_em_encode, unpack_elem_em,
                        unpack_fields, unpack_nibbles, unpack_sg_em)
from repro.errors import ShapeError
from repro.mx import mxfp4, nvfp4


class TestM2XFP:
    def test_ebw_is_4p5(self):
        assert m2xfp.ebw == 4.5
        assert m2xfp.weight_ebw == 4.5
        assert m2xfp.activation_ebw == 4.5

    def test_default_config_operand_ebws_are_equal(self):
        # The docstring's "both operand paths cost the same" claim, pinned:
        # the max() in ebw is degenerate for the paper's configuration.
        assert m2xfp.weight_ebw == m2xfp.activation_ebw == m2xfp.ebw

    def test_repr_exposes_both_operand_ebws(self):
        r = repr(m2xfp)
        assert "weight=4.5" in r and "activation=4.5" in r

    def test_asymmetric_config_splits_operand_ebws(self):
        fmt = M2XFP(top_k=2)
        assert fmt.activation_ebw > fmt.weight_ebw
        assert fmt.ebw == fmt.activation_ebw
        assert f"weight={fmt.weight_ebw:.4g}" in repr(fmt)

    def test_weight_and_activation_paths_differ(self, heavy_tensor):
        w = m2xfp.quantize_weight(heavy_tensor)
        a = m2xfp.quantize_activation(heavy_tensor)
        assert not np.allclose(w, a)

    def test_both_paths_beat_mxfp4(self, heavy_tensor):
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        for dq in (m2xfp.quantize_weight(heavy_tensor),
                   m2xfp.quantize_activation(heavy_tensor)):
            assert np.mean((dq - heavy_tensor) ** 2) < e_mx

    def test_default_quantize_is_activation_path(self, heavy_tensor):
        assert np.allclose(m2xfp.quantize(heavy_tensor),
                           m2xfp.quantize_activation(heavy_tensor))

    def test_m2_nvfp4_ebw_is_5(self):
        assert M2NVFP4().ebw == 5.0

    def test_m2_nvfp4_beats_nvfp4(self, heavy_tensor):
        e_nv = np.mean((nvfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        m2nv = M2NVFP4()
        e_w = np.mean((m2nv.quantize_weight(heavy_tensor) - heavy_tensor) ** 2)
        e_a = np.mean((m2nv.quantize_activation(heavy_tensor) - heavy_tensor) ** 2)
        assert e_w < e_nv
        assert e_a <= e_nv + 1e-12

    def test_custom_subgroup_sizes(self, heavy_tensor):
        for sub in (4, 16):
            fmt = M2XFP(sub_size=sub)
            assert fmt.quantize_weight(heavy_tensor).shape == heavy_tensor.shape


class TestPacking:
    def test_nibble_roundtrip(self, rng):
        codes = rng.integers(0, 16, 64)
        assert np.array_equal(unpack_nibbles(pack_nibbles(codes), 64), codes)

    def test_nibble_validation(self):
        with pytest.raises(ShapeError):
            pack_nibbles(np.array([1, 2, 3]))  # odd count
        with pytest.raises(ShapeError):
            pack_nibbles(np.array([1, 16]))    # out of range

    def test_field_roundtrip(self, rng):
        vals = rng.integers(0, 4, 16)
        assert np.array_equal(unpack_fields(pack_fields(vals, 2), 2, 16), vals)

    def test_field_validation(self):
        with pytest.raises(ShapeError):
            pack_fields(np.array([4]), 2)

    def test_elem_em_pack_roundtrip(self, rng):
        g = rng.standard_normal((40, 32)) * 3
        enc = elem_em_encode(g, sub_size=8)
        packed = pack_elem_em(enc)
        assert packed.bits_per_element == 4.5
        restored = unpack_elem_em(packed)
        assert np.array_equal(elem_em_decode(enc), elem_em_decode(restored))

    def test_sg_em_pack_roundtrip(self, rng):
        g = rng.standard_normal((40, 32)) * 3
        enc = sg_em_encode(g, sub_size=8)
        packed = pack_sg_em(enc)
        assert packed.bits_per_element == 4.5
        restored = unpack_sg_em(packed)
        assert np.allclose(sg_em_decode(enc), sg_em_decode(restored))

    def test_pack_rejects_top2(self, rng):
        enc = elem_em_encode(rng.standard_normal((4, 32)), sub_size=8, top_k=2)
        with pytest.raises(ShapeError):
            pack_elem_em(enc)

    def test_streams_are_separate(self, rng):
        enc = elem_em_encode(rng.standard_normal((10, 32)), sub_size=8)
        packed = pack_elem_em(enc)
        assert packed.elements.size == 10 * 16   # 128 bits per group
        assert packed.scales.size == 10          # 8 bits per group
        assert packed.metadata.size == 10        # 8 bits per group

    @given(st.integers(0, 2 ** 31 - 1), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_pack_roundtrip_property(self, seed, n):
        g = np.random.default_rng(seed).standard_normal((n, 32)) * 4
        enc = elem_em_encode(g, sub_size=8)
        restored = unpack_elem_em(pack_elem_em(enc))
        assert np.array_equal(elem_em_decode(enc), elem_em_decode(restored))


class TestMemoryLayout:
    def test_dispatch_alignment(self, rng):
        from repro.accel import DispatchUnit, MemoryLayout
        enc = elem_em_encode(rng.standard_normal((6, 32)), sub_size=8)
        layout = MemoryLayout(pack_elem_em(enc))
        unit = DispatchUnit(layout)
        assert unit.is_aligned
        records = list(unit.stream())
        assert len(records) == 6
        assert all(r.element_bytes.size == 16 for r in records)

    def test_record_bounds(self, rng):
        from repro.accel import MemoryLayout
        enc = elem_em_encode(rng.standard_normal((2, 32)), sub_size=8)
        layout = MemoryLayout(pack_elem_em(enc))
        with pytest.raises(ShapeError):
            layout.record(5)
