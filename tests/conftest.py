"""Shared fixtures: a small calibrated runtime reused across model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.profiles import load_runtime


@pytest.fixture(scope="session")
def rt_small():
    """A small, calibrated llama2-7b runtime shared by all model tests."""
    return load_runtime("llama2-7b", n_seq=6, seq_len=48)


@pytest.fixture()
def rng():
    """Deterministic RNG for the individual test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def heavy_tensor(rng):
    """An outlier-structured test tensor resembling LLM weights."""
    from repro.models.tensors import OutlierSpec, outlier_matrix
    spec = OutlierSpec(outlier_rate=0.01, outlier_scale=16.0,
                       channel_sigma=0.3, tail=0.1)
    return outlier_matrix(96, 128, spec, rng)
