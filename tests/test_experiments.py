"""Tests for the experiment runners and report formatting."""

import pytest

from repro.experiments import (EXPERIMENTS, ExperimentResult, format_table,
                               list_experiments, run_experiment)


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {"fig3", "fig4", "fig6", "fig7", "tbl2", "tbl3", "tbl4",
                    "tbl5", "fig13", "tbl6", "tbl7", "tbl8", "ablations"}
        assert set(EXPERIMENTS) == expected

    def test_list_in_order(self):
        assert list_experiments()[0] == "fig3"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestReport:
    def test_format_table_alignment(self):
        txt = format_table(["a", "bbb"], [[1.5, "x"], [22.25, "yy"]])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bbb" in lines[0]

    def test_render_includes_notes(self):
        res = ExperimentResult("x", "T", ["h"], [[1.0]], notes="hello")
        assert "hello" in res.render()
        assert "== x: T ==" in res.render()


class TestCheapExperiments:
    def test_tbl5_matches_paper(self):
        res = run_experiment("tbl5")
        assert res.extras["pe_variants"]["m2xfp"] == pytest.approx(2140.1, rel=0.01)
        total_row = res.rows[-1]
        assert total_row[2] == pytest.approx(1.051, rel=0.01)

    def test_fig13_headline(self):
        res = run_experiment("fig13")
        assert 1.5 <= res.extras["speedup"] <= 2.3
        assert 1.4 <= res.extras["energy_ratio"] <= 2.2


@pytest.mark.slow
class TestModelExperiments:
    """Fast-mode smoke runs of the model-backed experiments."""

    def test_fig4_group_size(self):
        res = run_experiment("fig4", fast=True)
        ebws = [r[1] for r in res.rows[:-1]]
        assert ebws == sorted(ebws)  # channel -> g-16 increases EBW

    def test_tbl8_m2xfp_beats_mxfp4_under_every_rule(self):
        res = run_experiment("tbl8", fast=True)
        for row in res.rows:
            mx, m2 = row[1], row[2]
            assert m2 < mx

    def test_ablation_clamp_close_to_exact(self):
        res = run_experiment("ablations", fast=True)
        assert res.extras["clamp_vs_exact"] < 0.5
