"""Gateway conformance: the HTTP contract, pinned and proven live.

The contract under test, in order of importance:

* **Bit-exactness through the front-end** — for every catalog format,
  every dispatch mode, packed and unpacked, the bytes a plain HTTP
  client gets through gateway -> wire protocol -> ``QuantService`` are
  identical to the local library's own answer.
* **Golden HTTP vectors** — request bodies, full response bytes, every
  error-status mapping, ``/healthz`` states and the ``/metrics``
  rendering are pinned in ``tests/golden/http_vectors.json``; the live
  gateway must serve exactly the pinned bytes for the pinned inputs.
* **Observability honesty** — ``/metrics`` counters agree with what
  the test itself sent.
"""

from __future__ import annotations

import base64
import http.client
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.gateway import GatewayThread, healthz_summary, render_metrics
from repro.gateway import http as ghttp
from repro.runner.formats import list_formats, make_format
from repro.serve.service import DISPATCH_MODES
from repro.server import ServerThread
from repro.server.client import local_expected

GOLDEN_PATH = Path(__file__).parent / "golden" / "http_vectors.json"


def _golden() -> dict:
    assert GOLDEN_PATH.exists(), \
        "HTTP vectors missing; run scripts/regen_http_vectors.py --regen"
    with open(GOLDEN_PATH) as f:
        return json.load(f)


# ----------------------------------------------------------------------
# Fixtures: two in-process replicas behind one gateway
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster():
    with ServerThread(port=0, max_delay_s=0.0005) as a, \
            ServerThread(port=0, max_delay_s=0.0005) as b:
        upstreams = [f"127.0.0.1:{a.port}", f"127.0.0.1:{b.port}"]
        with GatewayThread(upstreams=upstreams, port=0,
                           probe_interval_s=0.25) as gw:
            yield gw


def _conn(gw) -> http.client.HTTPConnection:
    return http.client.HTTPConnection("127.0.0.1", gw.port, timeout=60)


def _post_json(conn, fields) -> tuple[int, dict, bytes]:
    conn.request("POST", "/v1/quantize", json.dumps(fields),
                 {"Content-Type": "application/json"})
    resp = conn.getresponse()
    return resp.status, dict(resp.getheaders()), resp.read()


def _quantize(conn, x, *, fmt, op="activation", dispatch="inherit",
              packed=False, raw=False):
    """One gateway round trip, either body encoding; returns (status,
    headers, body)."""
    if raw:
        shape = ",".join(str(d) for d in x.shape)
        conn.request(
            "POST",
            f"/v1/quantize?format={fmt}&op={op}&dispatch={dispatch}"
            f"&shape={shape}&packed={'1' if packed else '0'}",
            np.ascontiguousarray(x, dtype="<f8").tobytes(),
            {"Content-Type": "application/octet-stream"})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    return _post_json(conn, {
        "format": fmt, "op": op, "dispatch": dispatch, "packed": packed,
        "shape": list(x.shape),
        "data_b64": base64.b64encode(
            np.ascontiguousarray(x, dtype="<f8").tobytes()).decode()})


def _assert_exact(status, body, x, *, fmt, op, dispatch, packed):
    assert status == 200, f"{fmt}:{op}:{dispatch}: {body!r}"
    expect = local_expected(x, fmt=fmt, op=op, dispatch=dispatch,
                            packed=packed)
    if packed:
        assert body == expect.to_bytes(), \
            f"{fmt}:{op}:{dispatch} packed bytes drifted over HTTP"
    else:
        out = json.loads(body)
        got = np.frombuffer(base64.b64decode(out["data_b64"]),
                            dtype="<f8").reshape(out["shape"])
        assert got.tobytes() == \
            np.asarray(expect, dtype=np.float64).tobytes(), \
            f"{fmt}:{op}:{dispatch} drifted over HTTP"
        assert out["format"] == fmt and out["packed"] is False
        assert out["fingerprint"] == repr(make_format(fmt))


# ----------------------------------------------------------------------
# Acceptance: end-to-end bit-exactness across the whole catalog
# ----------------------------------------------------------------------
def test_every_format_every_dispatch_bit_exact_through_gateway(cluster,
                                                               rng):
    """All 21 formats x all dispatch modes x packed/unpacked, vs the
    locally re-derived result. Ops alternate so both are covered."""
    x = rng.standard_normal((2, 64))
    conn = _conn(cluster)
    try:
        for i, name in enumerate(list_formats()):
            op = "weight" if i % 2 else "activation"
            for dispatch in DISPATCH_MODES:
                for packed in (False, True):
                    status, _, body = _quantize(
                        conn, x, fmt=name, op=op, dispatch=dispatch,
                        packed=packed)
                    _assert_exact(status, body, x, fmt=name, op=op,
                                  dispatch=dispatch, packed=packed)
    finally:
        conn.close()


def test_raw_octet_stream_equals_json_encoding(cluster, rng):
    """Both request encodings land on the same parser: same bytes out."""
    x = rng.standard_normal((2, 64))
    conn = _conn(cluster)
    try:
        for packed in (False, True):
            a = _quantize(conn, x, fmt="m2xfp", op="weight",
                          packed=packed, raw=False)
            b = _quantize(conn, x, fmt="m2xfp", op="weight",
                          packed=packed, raw=True)
            assert a[0] == b[0] == 200 and a[2] == b[2]
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Golden vectors: builders reproduce the pinned bytes...
# ----------------------------------------------------------------------
def test_http_vectors_pinned():
    golden = _golden()
    scripts = Path(__file__).parent.parent / "scripts"
    sys.path.insert(0, str(scripts))
    try:
        from regen_http_vectors import build_payload
        rebuilt = build_payload()
    finally:
        sys.path.pop(0)
    for section in ("quantize", "errors", "healthz"):
        assert set(rebuilt[section]) == set(golden[section]), section
        for key in golden[section]:
            assert rebuilt[section][key] == golden[section][key], \
                f"{section}:{key} drifted from the pinned bytes"
    assert rebuilt["metrics"] == golden["metrics"]
    assert rebuilt["input_hex"] == golden["input_hex"]


# ----------------------------------------------------------------------
# ... and the live gateway serves exactly those bytes.
# ----------------------------------------------------------------------
def test_live_gateway_serves_the_pinned_quantize_bytes(cluster):
    golden = _golden()
    x = np.array([float.fromhex(v) for v in golden["input_hex"]],
                 dtype=np.float64).reshape(golden["shape"])
    conn = _conn(cluster)
    try:
        for key, case in sorted(golden["quantize"].items()):
            pinned = bytes.fromhex(case["response_hex"])
            for body, ctype in (
                    (case["request_json"], "application/json"),
                    (np.ascontiguousarray(x, dtype="<f8").tobytes(),
                     "application/octet-stream")):
                path = "/v1/quantize" if ctype == "application/json" \
                    else f"/v1/quantize?{case['request_query']}"
                conn.request("POST", path, body,
                             {"Content-Type": ctype})
                resp = conn.getresponse()
                raw_status = f"HTTP/1.1 {resp.status}".encode()
                served = resp.read()
                assert pinned.startswith(raw_status), key
                assert pinned.endswith(b"\r\n\r\n" + served), \
                    f"{key} ({ctype}): served body != pinned body"
    finally:
        conn.close()


def test_live_error_statuses_match_the_pinned_contract(cluster, rng):
    """Each live failure maps to the pinned (status, exc_type) pair."""
    golden = _golden()["errors"]
    x = rng.standard_normal((2, 8))
    conn = _conn(cluster)
    try:
        cases = [
            # (golden key, request thunk)
            ("config_error_400", lambda: _quantize(conn, x, fmt="nope")),
            ("format_error_422",
             lambda: _quantize(conn, np.full((2, 8), np.nan),
                               fmt="mxfp4")),
        ]
        for key, thunk in cases:
            status, headers, body = thunk()
            pinned = golden[key]
            assert status == pinned["status"], key
            assert json.loads(body)["exc_type"] == pinned["exc_type"]
        # 404 / 405 / bad bodies.
        conn.request("GET", "/nope")
        resp = conn.getresponse()
        assert resp.status == 404 and resp.read()
        conn.request("GET", "/v1/quantize")
        resp = conn.getresponse()
        assert resp.status == 405 and resp.read()
        conn.request("POST", "/v1/quantize", b"not json",
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        assert json.loads(resp.read())["exc_type"] == "ConfigError"
        # Shape/payload mismatch.
        status, _, body = _post_json(conn, {
            "format": "m2xfp", "shape": [4, 4],
            "data_b64": base64.b64encode(b"\0" * 8).decode()})
        assert status == 400
    finally:
        conn.close()


def test_retry_after_on_503(cluster, rng):
    """A draining gateway answers 503 + Retry-After, per the goldens.

    The flag is set directly: a real drain with zero in-flight work
    completes (correctly) before a request could observe the window.
    The full drain lifecycle is covered by the slow CLI SIGTERM test.
    """
    golden = _golden()["errors"]["draining_503"]
    assert golden["retry_after"] is not None
    with ServerThread(port=0) as srv:
        with GatewayThread(upstreams=[f"127.0.0.1:{srv.port}"],
                           port=0, probe_interval_s=10.0) as gw:
            gw.gateway._draining = True
            conn = _conn(gw)
            try:
                status, headers, body = _quantize(
                    conn, rng.standard_normal((2, 8)), fmt="m2xfp")
                assert status == 503
                assert headers.get("retry-after") == \
                    golden["retry_after"]
                assert json.loads(body)["exc_type"] == "ServerDraining"
                # healthz keeps answering during the drain.
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                assert json.loads(resp.read())["status"] == "draining"
            finally:
                conn.close()
                gw.gateway._draining = False


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_healthz_ok_and_schema(cluster):
    conn = _conn(cluster)
    try:
        conn.request("GET", "/healthz")
        resp = conn.getresponse()
        body = json.loads(resp.read())
        assert resp.status == 200 and body["status"] == "ok"
        assert body["routable"] == 2 and not body["draining"]
        for info in body["replicas"].values():
            assert info["state"] == "up" and not info["ejected"]
    finally:
        conn.close()


def test_metrics_counters_match_what_we_sent(cluster, rng):
    """/metrics requests_total moves by exactly what the test sends."""
    x = rng.standard_normal((2, 16))
    before = cluster.gateway.snapshot()["requests_total"]
    conn = _conn(cluster)
    try:
        for _ in range(5):
            status, _, _ = _quantize(conn, x, fmt="smx4", op="weight")
            assert status == 200
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        text = resp.read().decode()
        assert resp.status == 200
        assert resp.getheader("content-type").startswith("text/plain")
    finally:
        conn.close()
    snap = cluster.gateway.snapshot()
    assert snap["requests_total"] == before + 5
    assert snap["arms"]["smx4:weight:unpacked"]["requests"] >= 5
    # The exposition carries the pinned metric schema...
    names = {line.split()[2] for line in text.splitlines()
             if line.startswith("# TYPE ")}
    assert names == set(_golden()["metrics"]["metric_names"])
    # ... and the live rendering is the pure renderer applied to the
    # live snapshot (modulo the requests that happened in between).
    assert "repro_gateway_requests_total" in text
    assert render_metrics(snap).splitlines()[0] == text.splitlines()[0]


def test_upstream_cache_hit_stats_surface_in_metrics(cluster, rng):
    """Repeated weight uploads memo-hit upstream; /metrics reports it."""
    x = rng.standard_normal((2, 32))
    conn = _conn(cluster)
    try:
        for _ in range(3):  # same tensor -> upstream weight memo hits
            _quantize(conn, x, fmt="mxint8", op="weight")
    finally:
        conn.close()
    # Wait for a probe to refresh the replica health snapshots.
    import time
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        snap = cluster.gateway.snapshot()
        hits = sum((info.get("health") or {})
                   .get("services", {}).get("weight_cache_hits", 0)
                   for info in snap["replicas"].values())
        if hits >= 2:
            break
        time.sleep(0.1)
    assert hits >= 2, "weight memo hits never surfaced via HEALTH probes"
    text = render_metrics(snap)
    assert "repro_gateway_replica_weight_cache_hits_total" in text


def _federated_view(health: dict) -> dict:
    """The subset of a replica health dict that feeds the federated
    ``repro_gateway_replica_*`` families — shared between the probed
    snapshot and a direct ``server_stats()`` read so the two can be
    compared for exact equality."""
    metrics = health.get("metrics") or {}
    return {
        "plan_cache": metrics.get("plan_cache"),
        "arms": {key: (metrics[key], metrics.get(f"{key}.latency"))
                 for key in metrics
                 if key.startswith("serve.")
                 and not key.endswith(".latency")},
        "busy": (health.get("stats") or {}).get("busy_rejections", 0),
        "open": (health.get("sessions") or {}).get("open", 0),
    }


def test_federated_replica_metrics_match_server_stats_exactly(cluster,
                                                              rng):
    """The acceptance crosscheck (ISSUE 10): every federated value on
    ``GET /metrics`` — plan-cache hit rate, per-arm batch size and p99,
    BUSY counts, KV session occupancy — equals a direct
    ``QuantClient.server_stats()`` read of the replica, exactly."""
    import time

    from repro.server import QuantClient

    x = rng.standard_normal((2, 32))
    conn = _conn(cluster)
    try:
        for fmt in ("m2xfp", "elem-em"):
            for _ in range(3):
                assert _quantize(conn, x, fmt=fmt, packed=True)[0] == 200
        # an open session so occupancy is nonzero on its home replica
        conn.request("POST", "/v1/session/open", json.dumps({
            "session_id": "fed-kv", "n_layers": 1,
            "policy": {"default": "m2xfp", "op": "weight"}}),
            {"Content-Type": "application/json"})
        assert conn.getresponse().read() and True
        # traffic stops here: the compared values are now quiescent.
        replicas = sorted(cluster.gateway.snapshot()["replicas"])
        direct = {}
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            snap = cluster.gateway.snapshot()
            for name in replicas:
                port = int(name.rsplit(":", 1)[1])
                with QuantClient(port=port) as cli:
                    direct[name] = cli.server_stats()
            views = {name: _federated_view(
                         snap["replicas"][name].get("health") or {})
                     for name in replicas}
            if all(views[name] == _federated_view(direct[name])
                   and views[name]["arms"] for name in replicas) \
                    and any(views[name]["open"] for name in replicas):
                break
            time.sleep(0.1)
        else:
            pytest.fail("probed health never converged with direct "
                        "server_stats() reads")
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        text = resp.read().decode()
        assert resp.status == 200
        # Build every expected sample line from the *direct* reads with
        # the renderer's own formulas; each must appear verbatim.
        for name in replicas:
            stats = direct[name]
            label = f'replica="{name}"'
            plan = stats["metrics"]["plan_cache"]
            lookups = plan["hits"] + plan["misses"]
            rate = plan["hits"] / lookups if lookups else 0.0
            assert (f'repro_gateway_replica_plan_cache_hit_rate'
                    f'{{{label}}} {rate:g}') in text
            busy = stats["stats"].get("busy_rejections", 0)
            assert (f'repro_gateway_replica_busy_total{{{label}}} '
                    f'{busy}') in text
            open_sessions = stats["sessions"].get("open", 0)
            assert (f'repro_gateway_replica_sessions_open{{{label}}} '
                    f'{open_sessions}') in text
            for key, (svc, lat) in \
                    _federated_view(stats)["arms"].items():
                arm_label = f'{label},arm="{key[len("serve."):]}"'
                assert (f'repro_gateway_replica_arm_requests_total'
                        f'{{{arm_label}}} {svc["requests"]}') in text
                batched = svc["requests"] - svc.get(
                    "weight_cache_hits", 0)
                mean = (batched / svc["batches"]
                        if svc.get("batches") else 0.0)
                assert (f'repro_gateway_replica_arm_batch_mean'
                        f'{{{arm_label}}} {mean:g}') in text
                p99 = round((lat or {}).get("p99", 0.0) * 1e3, 3)
                assert (f'repro_gateway_replica_arm_p99_ms'
                        f'{{{arm_label}}} {p99:g}') in text
    finally:
        try:
            conn.request("POST", "/v1/session/close",
                         json.dumps({"session_id": "fed-kv"}),
                         {"Content-Type": "application/json"})
            conn.getresponse().read()
        finally:
            conn.close()


def test_request_id_echoed_or_minted(cluster, rng):
    """The gateway echoes a caller's X-Request-Id header back on the
    response (wire-propagated tracing); absent one, it mints gw-<n>."""
    x = rng.standard_normal((2, 16))
    conn = _conn(cluster)
    try:
        conn.request("POST", "/v1/quantize", json.dumps({
            "format": "m2xfp", "op": "activation", "packed": False,
            "shape": list(x.shape),
            "data_b64": base64.b64encode(x.tobytes()).decode()}),
            {"Content-Type": "application/json",
             "X-Request-Id": "trace-me-42"})
        resp = conn.getresponse()
        resp.read()
        assert resp.status == 200
        assert resp.getheader("X-Request-Id") == "trace-me-42"
        status, headers, _ = _quantize(conn, x, fmt="m2xfp")
        assert status == 200
        minted = {k.lower(): v for k, v in headers.items()}[
            "x-request-id"]
        assert minted.startswith("gw-")
        # errors carry the id too: the trace covers failed requests
        conn.request("GET", "/nope", None,
                     {"X-Request-Id": "err-7"})
        resp = conn.getresponse()
        resp.read()
        assert resp.status == 404
        assert resp.getheader("X-Request-Id") == "err-7"
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Routing invariants observable from outside
# ----------------------------------------------------------------------
def test_format_affinity_pins_each_format_to_one_replica(cluster, rng):
    """Consistent hashing: one format's requests land on one replica."""
    x = rng.standard_normal((2, 16))
    conn = _conn(cluster)
    try:
        for fmt in ("m2xfp", "nvfp4", "smx6", "msfp12"):
            for _ in range(3):
                assert _quantize(conn, x, fmt=fmt)[0] == 200
    finally:
        conn.close()
    gw = cluster.gateway
    for fmt in ("m2xfp", "nvfp4", "smx6", "msfp12"):
        owner = gw.ring.route(gw.fingerprint(fmt))
        assert owner in gw.replicas  # the pinned owner is a real replica


def test_cli_gateway_parses_and_wires_config(monkeypatch):
    from repro.runner import cli as cli_mod

    captured = {}

    class _FakeGateway:
        def __init__(self, upstreams, **kwargs):
            captured["upstreams"] = list(upstreams)
            captured.update(kwargs)

    def _fake_run(gateway, ready=None):
        captured["ran"] = True

    import repro.gateway as gw_pkg
    monkeypatch.setattr(gw_pkg, "QuantGateway", _FakeGateway)
    monkeypatch.setattr(gw_pkg, "run_gateway", _fake_run)
    rc = cli_mod.main(["gateway", "--port", "0",
                       "--upstream", "127.0.0.1:7431,127.0.0.1:7432",
                       "--hash-seed", "7", "--probe-interval-s", "0.5",
                       "--upstream-timeout-s", "11",
                       "--drain-timeout-s", "9"])
    assert rc == 0 and captured["ran"]
    assert captured["upstreams"] == ["127.0.0.1:7431", "127.0.0.1:7432"]
    assert captured["port"] == 0
    assert captured["hash_seed"] == 7
    assert captured["probe_interval_s"] == 0.5
    assert captured["upstream_timeout_s"] == 11.0
    assert captured["drain_timeout_s"] == 9.0


@pytest.mark.slow
def test_cli_gateway_subprocess_end_to_end(rng):
    """`python -m repro gateway` launches replicas, serves, drains on
    SIGTERM."""
    import os
    import signal
    import subprocess

    repo = Path(__file__).resolve().parent.parent
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "gateway", "--port", "0",
         "--replicas", "2"],
        stdout=subprocess.PIPE, text=True, cwd=repo,
        env={**os.environ, "PYTHONPATH": str(repo / "src")})
    try:
        line = proc.stdout.readline()
        assert "gateway on" in line
        port = int(line.split("gateway on ")[1].split()[0]
                   .rsplit(":", 1)[1])
        x = rng.standard_normal((2, 32))
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        status, _, body = _quantize(conn, x, fmt="m2xfp", op="weight")
        _assert_exact(status, body, x, fmt="m2xfp", op="weight",
                      dispatch="inherit", packed=False)
        conn.request("GET", "/healthz")
        assert json.loads(conn.getresponse().read())["status"] == "ok"
        conn.close()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0  # graceful drain, clean exit
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
