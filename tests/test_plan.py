"""Compiled quantization plans: parity, cache semantics, env hygiene.

The plan layer's whole contract is "bit-identical, just faster":

* every catalog format's plan-routed ``quantize_weight`` /
  ``quantize_activation`` must equal the reference kernels bit for bit
  over adversarial tensors (denormals, huge/mixed magnitudes, padding,
  odd axes);
* the bisected decision thresholds must reproduce the reference grid
  search on *non-dyadic* grids (where the midpoint-boundary cache
  provably cannot);
* the plan cache must key on dispatch mode and configuration
  fingerprint, stay bounded, and survive concurrent use;
* a warmed ``QuantizedLM`` forward pass must read ``os.environ``
  exactly zero times.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.algos.mant import MANT_TYPES
from repro.core import ElemEM, SgEM
from repro.core.m2xfp import M2XFP
from repro.errors import FormatError
from repro.formats.floatspec import quantize_to_grid_reference
from repro.kernels.dispatch import reference_kernels
from repro.kernels.lut import compiled_thresholds, threshold_codes
from repro.models.profiles import load_runtime
from repro.models.quantized import QuantizedLM
from repro.plan import (MAX_PLANS, QuantPlan, clear_plan_cache, get_plan,
                        lookup_plan, plan_cache_stats)
from repro.runner.formats import FORMAT_REGISTRY, make_format

_RNG = np.random.default_rng(7)


def _adversarial_tensors() -> dict[str, np.ndarray]:
    r = np.random.default_rng(11)
    return {
        "normal": r.standard_normal((23, 96)),
        "outliers": r.standard_normal((8, 64)) * np.exp(4 * r.standard_normal((8, 64))),
        "denormal": r.standard_normal((4, 64)) * 5e-310,
        "mixed": np.where(r.random((6, 64)) < 0.5,
                          r.standard_normal((6, 64)) * 1e6,
                          r.standard_normal((6, 64)) * 1e-150),
        "huge": r.standard_normal((4, 64)) * 1e300,
        "zeros": np.zeros((3, 64)),
        "padded": r.standard_normal((5, 50)),
        "three_d": r.standard_normal((3, 7, 64)),
    }


class TestPlanParity:
    @pytest.mark.parametrize("name", sorted(FORMAT_REGISTRY))
    def test_catalog_plan_matches_reference(self, name):
        fmt = make_format(name)
        for tensor in _adversarial_tensors().values():
            for op in ("weight", "activation"):
                fn = fmt.quantize_weight if op == "weight" \
                    else fmt.quantize_activation
                fast = fn(tensor, axis=-1)
                with reference_kernels():
                    ref = fn(tensor, axis=-1)
                assert fast.tobytes() == ref.tobytes(), (name, op)

    def test_axis_zero_parity(self):
        x = _RNG.standard_normal((64, 9))
        for name in ("mxfp4", "elem-em", "sg-em", "m2xfp"):
            fmt = make_format(name)
            fast = fmt.quantize_weight(x, axis=0)
            with reference_kernels():
                ref = fmt.quantize_weight(x, axis=0)
            assert fast.tobytes() == ref.tobytes(), name

    def test_non_finite_raises_same_error(self):
        x = _RNG.standard_normal((4, 64))
        x[2, 10] = np.nan
        fmt = make_format("elem-em")
        with pytest.raises(FormatError, match="non-finite"):
            fmt.quantize_activation(x, axis=-1)
        y = _RNG.standard_normal((4, 64))
        y[0, 0] = -np.inf
        with pytest.raises(FormatError, match="non-finite"):
            make_format("sg-em").quantize_activation(y, axis=-1)

    def test_no_plans_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PLANS", "1")
        x = _RNG.standard_normal((8, 64))
        assert lookup_plan(make_format("elem-em"), "activation", x, -1) is None
        # Results are identical either way.
        fmt = make_format("m2xfp")
        off = fmt.quantize_activation(x, axis=-1)
        monkeypatch.delenv("REPRO_NO_PLANS")
        on = fmt.quantize_activation(x, axis=-1)
        assert off.tobytes() == on.tobytes()


class TestCompiledThresholds:
    @pytest.mark.parametrize("typ", [t for t in MANT_TYPES if hasattr(t, "grid")])
    def test_thresholds_match_reference_search(self, typ):
        grid = typ.grid
        t = compiled_thresholds(grid)
        probes = np.concatenate([
            np.random.default_rng(3).uniform(0, float(grid[-1]) * 1.5, 4000),
            t, np.nextafter(t, -np.inf), np.nextafter(t, np.inf),
            grid, np.array([0.0, 5e-324, 1e-300, float(grid[-1]) * 10]),
        ])
        ref = quantize_to_grid_reference(probes, grid)
        got = np.asarray(threshold_codes(t, probes), dtype=np.int64)
        assert np.array_equal(ref, got), typ.name


class TestPlanCache:
    def setup_method(self):
        clear_plan_cache()

    def test_modes_never_share_plans(self):
        fmt = make_format("elem-em")
        shape = (8, 64)
        fast = get_plan(fmt, "activation", shape, -1, (False, False))
        assert isinstance(fast, QuantPlan)
        assert get_plan(fmt, "activation", shape, -1, (True, False)) is None
        assert get_plan(fmt, "activation", shape, -1, (False, True)) is None
        # The fast-mode entry is untouched by the negative mode entries.
        again = get_plan(fmt, "activation", shape, -1, (False, False))
        assert again is fast

    def test_fingerprint_keying(self):
        shape = (8, 64)
        floor = get_plan(SgEM(scale_rule="floor"), "weight", shape, -1)
        ceil = get_plan(SgEM(scale_rule="ceil"), "weight", shape, -1)
        assert floor is not ceil
        # Same configuration from a fresh instance shares the entry.
        assert get_plan(SgEM(scale_rule="floor"), "weight", shape, -1) is floor

    def test_ops_get_distinct_plans(self):
        fmt = M2XFP()
        w = get_plan(fmt, "weight", (8, 64), -1)
        a = get_plan(fmt, "activation", (8, 64), -1)
        assert w is not a  # Sg-EM weights vs Elem-EM activations

    def test_bounded_eviction(self):
        fmt = make_format("mxfp4")
        for i in range(MAX_PLANS + 40):
            get_plan(fmt, "activation", (2, 32 + i), -1)
        stats = plan_cache_stats()
        assert stats["entries"] <= MAX_PLANS
        assert stats["evictions"] >= 40

    def test_thread_safety_under_concurrent_submits(self):
        from repro.serve import QuantService

        clear_plan_cache()
        rng = np.random.default_rng(5)
        tensors = [rng.standard_normal((4 + (i % 7), 64)) for i in range(48)]
        expected = None
        with QuantService("m2xfp", workers=4, max_batch=8,
                          max_delay_s=0.001) as svc:
            futures = [svc.submit(x, op="activation") for x in tensors]
            results = [f.result() for f in futures]
        with reference_kernels():
            fmt = make_format("m2xfp")
            expected = [fmt.quantize_activation(x, axis=-1) for x in tensors]
        for got, want in zip(results, expected):
            assert got.tobytes() == want.tobytes()
        errors: list[Exception] = []

        def hammer(seed: int) -> None:
            try:
                r = np.random.default_rng(seed)
                fmt = make_format("elem-em")
                for i in range(30):
                    shape = (2 + (seed + i) % 5, 64)
                    x = r.standard_normal(shape)
                    plan = get_plan(fmt, "activation", x.shape, -1)
                    out = plan.run(x)
                    assert out.shape == x.shape
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert plan_cache_stats()["entries"] <= MAX_PLANS


class _EnvSpy(dict):
    """An ``os.environ`` stand-in that counts every read."""

    def __init__(self, real):
        super().__init__(real)
        self.reads = 0

    def __getitem__(self, key):
        self.reads += 1
        return super().__getitem__(key)

    def get(self, key, default=None):
        self.reads += 1
        return super().get(key, default)

    def __contains__(self, key):
        self.reads += 1
        return super().__contains__(key)


class TestEnvHygiene:
    def test_forward_performs_zero_environ_reads(self, monkeypatch):
        """The QuantizedLM projection path resolves all flags at init."""
        runtime = load_runtime("llama2-7b", n_seq=2, seq_len=24)
        qlm = QuantizedLM(runtime.model, M2XFP(),
                          calibration_tokens=runtime.calib_tokens)
        tokens = runtime.tokens[:, :16]
        qlm.forward(tokens)  # warm the per-shape plan cache
        spy = _EnvSpy(os.environ)
        monkeypatch.setattr(os, "environ", spy)
        qlm.forward(tokens)
        assert spy.reads == 0

    def test_forward_zero_reads_covers_elem_and_block_formats(self, monkeypatch):
        runtime = load_runtime("llama2-7b", n_seq=2, seq_len=24)
        tokens = runtime.tokens[:, :16]
        for fmt in (ElemEM(), make_format("mxfp4")):
            qlm = QuantizedLM(runtime.model, fmt,
                              calibration_tokens=runtime.calib_tokens)
            qlm.forward(tokens)
            spy = _EnvSpy(os.environ)
            monkeypatch.setattr(os, "environ", spy)
            qlm.forward(tokens)
            monkeypatch.undo()
            assert spy.reads == 0, type(fmt).__name__
