"""Tests for the sharded experiment runner and the result cache.

The cheap experiments (tbl5, fig13: no model evaluation) drive the
default-suite tests; the heavy serial-vs-parallel CLI determinism check
over fig3/tbl6/tbl8 is marked ``slow``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.experiments import run_experiment
from repro.experiments.report import ExperimentResult
from repro.runner import (ExperimentRunner, ResultCache, RunContext,
                          SweepRunner, cache_key, canonical_dumps, code_salt,
                          format_fingerprint, list_formats, make_format)

CHEAP = ["tbl5", "fig13"]


def _runner(tmp_path: Path, **ctx_kwargs) -> ExperimentRunner:
    ctx_kwargs.setdefault("results_dir", str(tmp_path / "results"))
    ctx_kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return ExperimentRunner(RunContext(**ctx_kwargs))


class TestCacheKey:
    def test_stable_within_process(self):
        assert cache_key("tbl5", {"fast": True}) == cache_key("tbl5", {"fast": True})

    def test_sensitive_to_kwargs_and_id(self):
        base = cache_key("tbl5", {"fast": True})
        assert cache_key("tbl5", {"fast": False}) != base
        assert cache_key("tbl3", {"fast": True}) != base
        assert cache_key("tbl5", {"fast": True}, extra=("x",)) != base

    def test_kwarg_order_irrelevant(self):
        a = cache_key("x", {"a": 1, "b": (2, 3)})
        b = cache_key("x", {"b": (2, 3), "a": 1})
        assert a == b

    def test_dispatch_mode_namespaces_the_key(self, monkeypatch):
        base = cache_key("tbl5", {"fast": True})
        monkeypatch.setenv("REPRO_REFERENCE_KERNELS", "1")
        assert cache_key("tbl5", {"fast": True}) != base

    def test_code_salt_is_hex_and_cached(self):
        assert code_salt() == code_salt()
        int(code_salt(), 16)


class TestResultCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get("k") is None
        cache.put("k", {"payload": {"a": 1}})
        assert cache.get("k") == {"payload": {"a": 1}}
        assert cache.stats == {"hits": 1, "misses": 1}

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_RESULT_CACHE", "1")
        cache = ResultCache(tmp_path / "c")
        cache.put("k", {"payload": 1})
        assert cache.get("k") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k", {"payload": 1})
        cache.path("k").write_text("{not json")
        assert cache.get("k") is None

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k", {"payload": 1})
        cache.path("k").write_text('["valid json", "wrong shape"]')
        assert cache.get("k") is None
        cache.path("k2").write_text('{"no_payload_field": 1}')
        assert cache.get("k2") is None


class TestResultJson:
    def test_round_trip_fixpoint(self):
        res = run_experiment("tbl5", fast=True)
        payload = res.to_json()
        rebuilt = ExperimentResult.from_json(payload)
        assert rebuilt.to_json() == payload
        assert rebuilt.render() == res.render()

    def test_tuple_keys_and_numpy_values_serialize(self):
        import numpy as np
        res = ExperimentResult("x", "t", ["h"], [[np.float64(1.5)]],
                               extras={("a", "b"): np.int64(3),
                                       "arr": np.arange(2)})
        payload = json.loads(canonical_dumps(res.to_json()))
        assert payload["extras"]["a|b"] == 3
        assert payload["extras"]["arr"] == [0, 1]
        assert payload["rows"] == [[1.5]]


class TestKwargValidation:
    def test_unknown_kwarg_is_clear_config_error(self):
        with pytest.raises(ConfigError) as exc:
            run_experiment("tbl5", fats=True)
        assert "fats" in str(exc.value)
        assert "fast" in str(exc.value)  # lists the accepted names

    def test_unknown_experiment_still_keyerror(self):
        with pytest.raises(KeyError):
            run_experiment("fig99", fast=True)

    def test_runner_validates_before_spawning(self, tmp_path):
        runner = _runner(tmp_path, jobs=4)
        with pytest.raises(ConfigError):
            runner.run(["tbl5"], extra_kwargs={"bogus_knob": 1})


class TestExperimentRunner:
    def test_artifacts_written_and_cached(self, tmp_path):
        runner = _runner(tmp_path)
        records = runner.run(CHEAP)
        assert [r.experiment_id for r in records] == CHEAP
        assert not any(r.cached for r in records)
        for r in records:
            data = json.loads(Path(r.artifact_path).read_text())
            assert data["experiment_id"] == r.experiment_id
            meta = json.loads(Path(r.meta_path).read_text())
            assert meta["cached"] is False and meta["cache_key"] == r.key

        again = _runner(tmp_path).run(CHEAP)
        assert all(r.cached for r in again)
        assert [r.result.to_json() for r in again] == \
               [r.result.to_json() for r in records]

    def test_serial_and_parallel_artifacts_byte_identical(self, tmp_path):
        r1 = _runner(tmp_path / "s", jobs=1).run(CHEAP)
        r4 = _runner(tmp_path / "p", jobs=4).run(CHEAP)
        for a, b in zip(r1, r4):
            assert Path(a.artifact_path).read_bytes() == \
                   Path(b.artifact_path).read_bytes()

    def test_no_cache_context_reruns(self, tmp_path):
        _runner(tmp_path).run(["tbl5"])
        rerun = _runner(tmp_path, use_cache=False).run(["tbl5"])
        assert not rerun[0].cached

    def test_cached_record_reports_original_seconds(self, tmp_path):
        first = _runner(tmp_path).run(["fig13"])
        again = _runner(tmp_path).run(["fig13"])
        assert again[0].cached
        assert again[0].seconds == pytest.approx(first[0].seconds, abs=1e-3)

    def test_cache_defaults_under_results_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        runner = ExperimentRunner(RunContext(results_dir=str(tmp_path / "out")))
        assert Path(runner.cache.root) == tmp_path / "out" / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        runner = ExperimentRunner(RunContext(results_dir=str(tmp_path / "out")))
        assert Path(runner.cache.root) == tmp_path / "envcache"

    def test_seed_namespaces_the_cache(self, tmp_path):
        r0 = _runner(tmp_path, seed=0).run(["tbl5"])
        r7 = _runner(tmp_path, seed=7).run(["tbl5"])
        assert r0[0].key != r7[0].key
        assert not r7[0].cached  # a new seed is never served stale results


class TestSweepRunner:
    def test_sweep_arms_cached_incrementally(self, tmp_path):
        ctx = dict(results_dir=str(tmp_path / "results"),
                   cache_dir=str(tmp_path / "cache"))
        first = SweepRunner(RunContext(**ctx)).run(["mxfp4"], ["llama2-7b"])
        assert not first.cached
        assert first.result.rows[0][0] == "llama2-7b"

        second = SweepRunner(RunContext(**ctx))
        record = second.run(["mxfp4", "mxint8"], ["llama2-7b"])
        assert second.cache.stats["hits"] == 1  # the mxfp4 arm resumed
        names = [row[1] for row in record.result.rows]
        assert names == ["mxfp4", "mxint8"]
        data = json.loads(Path(record.artifact_path).read_text())
        assert data["extras"]["cells"]["llama2-7b|mxfp4"]["ppl"] == \
               first.result.extras["cells"]["llama2-7b|mxfp4"]["ppl"]

    def test_format_fingerprint_feeds_key(self):
        assert format_fingerprint("mxfp4") != format_fingerprint("mxint8")
        for name in list_formats():
            make_format(name)  # every catalog entry constructs

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError):
            make_format("mxfp99")


class TestCli:
    def test_list_command(self, capsys):
        from repro.runner.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tbl3" in out and "mxfp4" in out

    def test_unknown_id_exits_cleanly(self, capsys):
        from repro.runner.cli import main
        assert main(["run", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_legacy_alias_runs_experiment(self, tmp_path, capsys, monkeypatch):
        from repro.runner.cli import main
        monkeypatch.chdir(tmp_path)
        assert main(["tbl5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "tbl5" in out
        assert (tmp_path / "results" / "tbl5.json").exists()

    def test_legacy_alias_accepts_flag_first(self, tmp_path, capsys,
                                             monkeypatch):
        # The pre-runner CLI accepted flags in any position.
        from repro.runner.cli import main
        monkeypatch.chdir(tmp_path)
        assert main(["--fast", "tbl5"]) == 0
        assert "tbl5" in capsys.readouterr().out

    def test_no_args_prints_help(self, capsys):
        from repro.runner.cli import main
        assert main([]) == 1
        assert "available experiments" in capsys.readouterr().out


def _cli(cwd: Path, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + \
        env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          cwd=cwd, env=env, capture_output=True, text=True,
                          check=True)


@pytest.mark.slow
class TestCliDeterminism:
    """`python -m repro run` is byte-deterministic across --jobs."""

    IDS = ["fig3", "tbl6", "tbl8"]

    def test_jobs1_jobs4_identical_then_fully_cached(self, tmp_path):
        _cli(tmp_path, "run", *self.IDS, "--jobs", "1", "--fast", "--quiet",
             "--results-dir", "r1", "--cache-dir", "c1")
        _cli(tmp_path, "run", *self.IDS, "--jobs", "4", "--fast", "--quiet",
             "--results-dir", "r4", "--cache-dir", "c4")
        for exp_id in self.IDS:
            a = (tmp_path / "r1" / f"{exp_id}.json").read_bytes()
            b = (tmp_path / "r4" / f"{exp_id}.json").read_bytes()
            assert a == b, f"{exp_id}: serial/parallel artifact drift"

        again = _cli(tmp_path, "run", *self.IDS, "--jobs", "4", "--fast",
                     "--quiet", "--results-dir", "r4", "--cache-dir", "c4")
        assert f"cache: {len(self.IDS)} hits / {len(self.IDS)}" in again.stdout
        for exp_id in self.IDS:
            b2 = (tmp_path / "r4" / f"{exp_id}.json").read_bytes()
            a = (tmp_path / "r1" / f"{exp_id}.json").read_bytes()
            assert a == b2, f"{exp_id}: cache-served artifact drift"
