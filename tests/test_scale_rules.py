"""Tests for the shared-scale exponent rules (Tbl. 8 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.formats import FP4_E2M1
from repro.mx import SCALE_RULES, shared_scale, shared_scale_exponent


class TestRules:
    def test_known_rules_present(self):
        assert set(SCALE_RULES) == {"floor", "ceil", "rtn1", "rtn2", "rtne"}

    def test_unknown_rule_raises(self):
        with pytest.raises(ConfigError):
            shared_scale_exponent(np.array([1.0]), FP4_E2M1, "bogus")

    def test_floor_rule_window(self):
        # floor: amax / S lands in [P, 2P) = [4, 8).
        amax = np.array([4.0, 5.0, 6.5, 7.99, 8.0, 100.0])
        s = shared_scale(amax, FP4_E2M1, "floor")
        ratio = amax / s
        assert np.all(ratio >= 4.0 - 1e-12)
        assert np.all(ratio < 8.0 + 1e-12)

    def test_floor_can_clip_the_max(self):
        # amax/S in (6, 8) clips when quantized to FP4 (max 6).
        s = shared_scale(np.array([7.0]), FP4_E2M1, "floor")[0]
        assert 7.0 / s > FP4_E2M1.max_value

    def test_ceil_rule_never_clips(self):
        amax = np.abs(np.random.default_rng(0).standard_normal(500)) * 100 + 1e-6
        s = shared_scale(amax, FP4_E2M1, "ceil")
        assert np.all(amax / s <= FP4_E2M1.max_value + 1e-9)

    def test_rtne_equals_ceil_for_fp4(self):
        amax = np.abs(np.random.default_rng(1).standard_normal(200)) * 50 + 1e-6
        a = shared_scale_exponent(amax, FP4_E2M1, "rtne")
        b = shared_scale_exponent(amax, FP4_E2M1, "ceil")
        assert np.array_equal(a, b)

    def test_zero_block_gets_unit_scale(self):
        assert shared_scale(np.array([0.0]), FP4_E2M1, "floor")[0] == 1.0

    def test_exponent_saturates(self):
        e = shared_scale_exponent(np.array([1e60]), FP4_E2M1, "floor")
        assert e[0] == 127
        e = shared_scale_exponent(np.array([1e-45]), FP4_E2M1, "floor")
        assert e[0] == -127

    def test_rtn_rules_differ_from_floor(self):
        amax = np.array([4.2])
        rules = {r: shared_scale_exponent(amax, FP4_E2M1, r)[0]
                 for r in ("floor", "ceil", "rtn1", "rtn2")}
        assert len(set(rules.values())) >= 2

    @given(st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_all_rules_power_of_two(self, amax):
        for rule in SCALE_RULES:
            s = shared_scale(np.array([amax]), FP4_E2M1, rule)[0]
            assert s == 2.0 ** round(np.log2(s))
