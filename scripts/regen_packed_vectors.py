"""Regenerate the golden packed-bytes vectors for the tensor codec.

Run:  PYTHONPATH=src python scripts/regen_packed_vectors.py --regen

Writes ``tests/golden/packed_vectors.json``: a deterministic adversarial
input (stored as ``float.hex()`` text), the exact serialized container
bytes for the m2xfp and m2-nvfp4 formats on both operand paths, and the
decoded output. ``tests/test_codec.py`` re-encodes from the committed
inputs under every kernel dispatch mode and compares the *bytes* — the
container layout is part of the conformance surface, so any silent
change to stream order, header fields or bit packing fails tier-1.

Like ``scripts/regen_golden_vectors.py``, run this only when the wire
format changes intentionally, and say so in the commit message.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.codec import decode, encode
from repro.runner.formats import make_format

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / \
    "packed_vectors.json"

#: The formats whose wire layout is pinned (the paper's two headliners).
PINNED = ("m2xfp", "m2-nvfp4")


def _adversarial_input(rng: np.random.Generator) -> np.ndarray:
    """A (4, 64) matrix hitting scales, ties, zeros and outliers."""
    x = rng.standard_normal((4, 64)) * np.exp(rng.standard_normal((4, 64)))
    x[0, 0:6] = [0.0, -0.0, 1e-30, -1e-30, 640.0, -0.4375]
    x[1, :] = 0.0                      # an all-zero group row
    x[2, 3] = 3.0                      # exact FP4 grid point
    x[2, 7] = -6.0 * 2.0 ** 5          # saturating block maximum
    return x


def build_payload() -> dict:
    rng = np.random.default_rng(20260728)
    x = _adversarial_input(rng)
    payload = {"input_hex": [float(v).hex() for v in x.ravel()],
               "shape": list(x.shape), "cases": {}}
    for name in PINNED:
        fmt = make_format(name)
        for op in ("weight", "activation"):
            pt = encode(fmt, x, op=op, verify=True)
            payload["cases"][f"{name}:{op}"] = {
                "format": name,
                "op": op,
                "packed_hex": pt.to_bytes().hex(),
                "payload_bytes": pt.payload_bytes,
                "bits_per_element": pt.bits_per_element,
                "decoded_hex": [float(v).hex() for v in decode(pt).ravel()],
            }
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regen", action="store_true",
                        help="actually overwrite the golden file")
    ns = parser.parse_args()
    payload = build_payload()
    if not ns.regen:
        print("dry run (use --regen to write); cases:")
        for key, case in payload["cases"].items():
            print(f"  {key:24s} {case['payload_bytes']:5d} payload bytes, "
                  f"{case['bits_per_element']:.4f} bits/elem")
        return
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
