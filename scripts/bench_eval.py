"""Benchmark the compiled-plan layer and the multi-format eval engine.

Two sections, written to ``BENCH_eval.json``:

* **activation_quantize** — repeated ``quantize_activation`` calls per
  format at an eval-batch shape and a serving (single-sequence) shape,
  three ways: compiled plans (the default), the legacy fast path
  (``REPRO_NO_PLANS=1``) and the reference kernels. The speedup
  columns are the stable, machine-portable part.
* **eval_grids** — the Tbl. 3 and Tbl. 8 multi-format arms over
  preloaded runtimes (profile calibration excluded — it is identical
  work in every mode), run as one engine session (tbl3 then tbl8, so
  tbl8's floor-rule cells hit the session memo) vs the legacy per-cell
  path with plans disabled.

Run:  PYTHONPATH=src python scripts/bench_eval.py [--out PATH] [--quick]
          [--pre-pr PATH]

``--pre-pr`` embeds a measurement file produced by running this
script's legacy arms against the pre-PR checkout on the same machine,
and adds ``speedup_vs_pre_pr`` columns.
``--quick`` (also used by the opt-in ``REPRO_BENCH_REGRESSION=1``
smoke test) uses one profile and a small corpus.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from contextlib import contextmanager

import numpy as np

DEFAULT_OUT = "BENCH_eval.json"

#: (catalog format, shape label) activation arms.
ACT_FORMATS = ("mxfp4", "elem-em", "sg-em", "sg-ee", "m2xfp", "mx-m-ant")
ACT_SHAPES = {"eval_batch": (12, 96, 128), "serving_seq": (1, 96, 128)}


def _best_time(fn, reps: int) -> float:
    fn()  # warm plan caches and allocators
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@contextmanager
def _env(**kv):
    old = {k: os.environ.get(k) for k in kv}
    os.environ.update({k: v for k, v in kv.items() if v is not None})
    try:
        yield
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _make_format(name):
    if name == "mx-m-ant":
        from repro.algos.mant import MXMAnt
        return MXMAnt()
    from repro.runner.formats import make_format
    return make_format(name)


def bench_activation(quick: bool = False) -> dict:
    """Repeated activation-quantize throughput: plan vs legacy vs reference."""
    from repro.kernels import reference_kernels

    rng = np.random.default_rng(0)
    reps = 3 if quick else 5
    results: dict[str, dict] = {}
    for shape_name, shape in ACT_SHAPES.items():
        x = rng.standard_normal(shape)
        for name in ACT_FORMATS:
            fmt = _make_format(name)
            call = lambda: fmt.quantize_activation(x, axis=-1)
            plan_s = _best_time(call, reps)
            with _env(REPRO_NO_PLANS="1"):
                legacy_s = _best_time(call, reps)
                with reference_kernels():
                    ref_s = _best_time(call, max(1, reps - 2))
            results[f"{name}@{shape_name}"] = {
                "elements": int(x.size),
                "plan_s": round(plan_s, 6),
                "legacy_s": round(legacy_s, 6),
                "reference_s": round(ref_s, 6),
                "plan_elems_per_s": round(x.size / plan_s, 1),
                "speedup_vs_legacy": round(legacy_s / plan_s, 3),
                "speedup_vs_reference": round(ref_s / plan_s, 3),
            }
    return results


def _grid_session(profiles: tuple[str, ...], fast: bool) -> dict[str, float]:
    """One tbl3-then-tbl8 session; returns per-experiment wall-clock."""
    from repro.experiments import tbl3_wikitext_ppl, tbl8_scale_rules

    t0 = time.perf_counter()
    tbl3_wikitext_ppl.run(profile_keys=profiles, fast=fast)
    t1 = time.perf_counter()
    tbl8_scale_rules.run(profile_keys=profiles, fast=fast)
    t2 = time.perf_counter()
    return {"tbl3_s": t1 - t0, "tbl8_s": t2 - t1, "session_s": t2 - t0}


def bench_eval_grids(quick: bool = False) -> dict:
    """Tbl. 3 / Tbl. 8 multi-format arms: engine session vs legacy path."""
    from repro.eval.engine import default_engine, reset_default_engine
    from repro.models.profiles import load_runtime

    profiles = ("llama2-7b",) if quick else ("llama2-7b", "llama3-8b")
    # Preload runtimes so profile calibration (identical in every mode)
    # stays out of the measurement.
    for key in profiles:
        load_runtime(key, n_seq=8 if quick else None,
                     seq_len=64 if quick else None)

    def _clear_weight_caches() -> None:
        # Both modes start with cold per-model weight caches; only the
        # engine's own sharing (wrappers, memo) may carry state.
        from repro.models.profiles import _RUNTIME_CACHE
        for runtime in _RUNTIME_CACHE.values():
            runtime.model.__dict__.pop("_quant_weight_cache", None)

    _clear_weight_caches()
    with _env(REPRO_NO_EVAL_ENGINE="1", REPRO_NO_PLANS="1"):
        legacy = _grid_session(profiles, fast=quick)
    _clear_weight_caches()
    reset_default_engine()
    engine = _grid_session(profiles, fast=quick)
    stats = default_engine().stats()

    out = {"profiles": list(profiles),
           "note": "runtimes preloaded (calibration excluded); engine "
                   "session runs tbl3 then tbl8 so shared arms hit the memo"}
    for k in ("tbl3_s", "tbl8_s", "session_s"):
        label = k[:-2]
        out[label] = {
            "engine_s": round(engine[k], 3),
            "legacy_s": round(legacy[k], 3),
            "speedup": round(legacy[k] / engine[k], 3),
        }
    out["engine_stats"] = {k: stats[k] for k in
                           ("wrapper_builds", "wrapper_hits", "ppl_evals",
                            "ppl_hits", "items_builds", "items_hits")}
    return out


def run_benchmarks(quick: bool = False) -> dict:
    """Run every eval benchmark; returns the BENCH_eval payload."""
    return {
        "schema": 1,
        "quick": bool(quick),
        "note": ("compiled plans + eval engine vs the legacy fast path "
                 "(REPRO_NO_PLANS=1 / REPRO_NO_EVAL_ENGINE=1) and the "
                 "reference kernels, one machine; speedups are the stable "
                 "columns"),
        "activation_quantize": bench_activation(quick),
        "eval_grids": bench_eval_grids(quick),
    }


def _merge_pre_pr(payload: dict, pre: dict) -> None:
    """Attach a pre-PR measurement and vs-pre-PR speedups."""
    payload["pre_pr"] = pre
    for key, row in payload["activation_quantize"].items():
        base = pre.get("activation_quantize", {}).get(key)
        if base and "legacy_s" in base:
            row["pre_pr_s"] = base["legacy_s"]
            row["speedup_vs_pre_pr"] = round(base["legacy_s"] / row["plan_s"], 3)
    for label in ("tbl3", "tbl8", "session"):
        base = pre.get("eval_grids", {}).get(label)
        row = payload["eval_grids"].get(label)
        if base and row and "legacy_s" in base:
            row["pre_pr_s"] = base["legacy_s"]
            row["speedup_vs_pre_pr"] = round(
                base["legacy_s"] / row["engine_s"], 3)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=DEFAULT_OUT)
    ap.add_argument("--quick", action="store_true",
                    help="one profile, small corpus (the smoke mode)")
    ap.add_argument("--pre-pr", default=None,
                    help="JSON from this script run on the pre-PR checkout")
    args = ap.parse_args()
    payload = run_benchmarks(quick=args.quick)
    if args.pre_pr:
        with open(args.pre_pr) as f:
            _merge_pre_pr(payload, json.load(f))
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    for name, row in payload["activation_quantize"].items():
        extra = f"  vs pre-PR {row['speedup_vs_pre_pr']:5.2f}x" \
            if "speedup_vs_pre_pr" in row else ""
        print(f"  {name:24s} plan {row['plan_s']*1e3:8.2f} ms  "
              f"vs legacy {row['speedup_vs_legacy']:5.2f}x  "
              f"vs reference {row['speedup_vs_reference']:5.2f}x{extra}")
    for label in ("tbl3", "tbl8", "session"):
        row = payload["eval_grids"][label]
        extra = f"  vs pre-PR {row['speedup_vs_pre_pr']:5.2f}x" \
            if "speedup_vs_pre_pr" in row else ""
        print(f"  {label:24s} engine {row['engine_s']:7.2f} s  "
              f"legacy {row['legacy_s']:7.2f} s  ({row['speedup']:.2f}x){extra}")


if __name__ == "__main__":
    main()
