"""Benchmark the fast kernels against the reference paths.

Times every hot quantization path twice — once through the fast kernel
package (the default) and once through the reference implementations
(``REPRO_REFERENCE_KERNELS=1`` semantics) — and writes the results to
``BENCH_kernels.json`` so future changes have a trajectory to beat.
``scripts/check_bench_regression.py`` compares a fresh run against the
committed file.

Run:  PYTHONPATH=src python scripts/bench_kernels.py [--out PATH] [--quick]

Absolute numbers are machine-dependent; the committed file records the
machine that produced it only through its own throughputs. The *speedup*
columns (fast vs reference on the same machine) are the stable part.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.core import ElemEM, M2NVFP4, SgEE, SgEM, m2xfp
from repro.formats.registry import FP4_E2M1, FP6_E2M3, FP8_E4M3
from repro.kernels import fast_kernels, reference_kernels
from repro.kernels.bittwiddle import encode_magnitudes
from repro.models.profiles import load_runtime
from repro.models.quantized import NO_WEIGHT_CACHE_ENV, QuantizedLM
from repro.mx import MXFP4, NVFP4

DEFAULT_OUT = "BENCH_kernels.json"


def _best_time(fn, reps: int) -> float:
    fn()  # warm caches and allocators
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_pair(fn, elements: int, reps_fast: int = 3, reps_ref: int = 1) -> dict:
    with reference_kernels():
        ref_s = _best_time(fn, reps_ref)
    with fast_kernels():
        fast_s = _best_time(fn, reps_fast)
    return {
        "elements": int(elements),
        "ref_s": round(ref_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 3),
        "fast_elems_per_s": round(elements / fast_s, 1),
    }


def run_benchmarks(quick: bool = False) -> dict:
    """Run every kernel benchmark; returns the BENCH_kernels payload."""
    rng = np.random.default_rng(0)
    scale = 4 if quick else 1
    results: dict[str, dict] = {}

    # --- scalar encode throughput -------------------------------------
    x1m = rng.standard_normal(1_000_000 // scale)
    for name, spec in (("fp4_encode", FP4_E2M1), ("fp6_encode", FP6_E2M3),
                       ("fp8_e4m3_encode", FP8_E4M3)):
        results[name] = _bench_pair(lambda s=spec: s.encode(x1m), x1m.size,
                                    reps_fast=5, reps_ref=3)
        with fast_kernels():
            bt = _best_time(lambda s=spec: encode_magnitudes(s, x1m), 5)
        results[name]["bittwiddle_s"] = round(bt, 6)

    # --- block formats -------------------------------------------------
    w_act = rng.standard_normal((1024 // scale, 4096))
    results["mxfp4_quantize"] = _bench_pair(
        lambda: MXFP4().quantize(w_act, axis=-1), w_act.size)
    results["nvfp4_quantize"] = _bench_pair(
        lambda: NVFP4().quantize(w_act, axis=-1), w_act.size)
    results["elem_em_top1"] = _bench_pair(
        lambda: ElemEM().quantize(w_act, axis=-1), w_act.size)

    # --- adaptive searches ---------------------------------------------
    # The headline micro-benchmark: Sg-EM adaptive weight quantization of
    # an LLM-layer-sized matrix (the M2XFP offline path).
    w_big = rng.standard_normal((2048 // scale, 2048))
    results["sg_em_adaptive_weight"] = _bench_pair(
        lambda: SgEM(adaptive=True).quantize(w_big, axis=-1), w_big.size)
    w_mid = rng.standard_normal((1024 // scale, 1024))
    results["sg_ee_adaptive"] = _bench_pair(
        lambda: SgEE(adaptive=True).quantize(w_mid, axis=-1), w_mid.size)
    results["m2nvfp4_weight"] = _bench_pair(
        lambda: M2NVFP4().quantize_weight(w_mid, axis=-1), w_mid.size)

    # --- end-to-end model run ------------------------------------------
    # Full QuantizedLM construction + perplexity with m2xfp (weight cache
    # disabled so both paths do the same offline work).
    rt = load_runtime("llama2-7b", n_seq=4, seq_len=48)
    prev = os.environ.get(NO_WEIGHT_CACHE_ENV)
    os.environ[NO_WEIGHT_CACHE_ENV] = "1"
    try:
        def full_run():
            return QuantizedLM(rt.model, m2xfp).perplexity(rt.tokens)
        n_weights = sum(layer[name].size for layer in rt.model.layers
                        for name in ("wq", "wk", "wv", "wo",
                                     "w_gate", "w_up", "w_down"))
        results["qlm_m2xfp_perplexity"] = _bench_pair(full_run, n_weights,
                                                      reps_fast=3, reps_ref=2)
    finally:
        if prev is None:
            os.environ.pop(NO_WEIGHT_CACHE_ENV, None)
        else:
            os.environ[NO_WEIGHT_CACHE_ENV] = prev

    # Weight-cache effect on a repeated experiment arm (fast path only).
    t0 = time.perf_counter()
    QuantizedLM(rt.model, m2xfp)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    QuantizedLM(rt.model, m2xfp)
    warm = time.perf_counter() - t0
    results["qlm_weight_cache"] = {
        "cold_s": round(cold, 6), "warm_s": round(warm, 6),
        "speedup": round(cold / warm, 3) if warm > 0 else float("inf"),
    }

    return {
        "schema": 1,
        "quick": bool(quick),
        "note": ("fast vs REPRO_REFERENCE_KERNELS=1 on one machine; "
                 "speedups are the stable columns, absolute throughput is "
                 "machine-dependent"),
        "kernels": results,
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=DEFAULT_OUT)
    ap.add_argument("--quick", action="store_true",
                    help="smaller tensors (~4x faster, noisier numbers)")
    args = ap.parse_args()
    payload = run_benchmarks(quick=args.quick)
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    for name, row in payload["kernels"].items():
        if "speedup" in row and "ref_s" in row:
            print(f"  {name:>24}: {row['speedup']:6.2f}x "
                  f"({row['ref_s']*1e3:8.1f} ms -> {row['fast_s']*1e3:7.1f} ms)")
        else:
            print(f"  {name:>24}: {row}")


if __name__ == "__main__":
    main()
