"""Regenerate the golden HTTP vectors for the gateway.

Run:  PYTHONPATH=src python scripts/regen_http_vectors.py --regen

Writes ``tests/golden/http_vectors.json``: for the m2xfp / elem-em /
m2-nvfp4 arms it pins the canonical quantize **request body** (the JSON
encoding; the octet-stream variant's query string is pinned alongside)
and the complete **HTTP response bytes** — status line, the fixed
header set, and the canonical-JSON or packed-container body. Response
bodies are built under *all three* dispatch modes and asserted
byte-identical before one is pinned: dispatch changes the compute
path, never the bits or the body.

Also pinned: the full error-status contract (one response per typed
exception — ``FormatError``/``ConfigError``/``CodecError`` → 4xx,
``SessionLost`` → 410, ``BUSY``/``DRAINING`` → 503 + ``Retry-After``,
transport failures → 502/504, plus the 404/405/413 HTTP-shape
answers), the ``/v1/session/*`` bodies (request JSON plus the exact
ack / K-V response bytes, built through a real ``KVCacheSession``),
the ``/healthz`` bodies for every cluster condition, and the
``/metrics`` rendering of a fixed synthetic stats snapshot (schema +
exact text).

``tests/test_gateway.py`` rebuilds everything through the same pure
builders (``repro.gateway.http``, ``render_metrics``,
``healthz_summary``) and compares bytes — and checks a **live**
gateway serves exactly the pinned bytes for the quantize and error
cases. Run with ``--regen`` only when the HTTP contract changes
intentionally, and say so in the commit message.
"""

from __future__ import annotations

import argparse
import base64
import json
from pathlib import Path

import numpy as np

from repro import errors
from repro.codec import encode
from repro.gateway import healthz_summary, render_metrics
from repro.gateway import http as ghttp
from repro.runner.formats import make_format
from repro.serve.service import DISPATCH_MODES

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / \
    "golden" / "http_vectors.json"

#: The arms whose request/response bodies are pinned.
PINNED = ("m2xfp", "elem-em", "m2-nvfp4")


def _fixed_input() -> np.ndarray:
    """A deterministic (2, 64) tensor hitting zeros, ties and outliers."""
    rng = np.random.default_rng(20260807)
    x = rng.standard_normal((2, 64)) * np.exp(rng.standard_normal((2, 64)))
    x[0, 0:5] = [0.0, -0.0, 1e-30, 640.0, -0.4375]
    x[1, 7] = -6.0 * 2.0 ** 5
    return x


def _quantize_case(x: np.ndarray, name: str, op: str,
                   packed: bool) -> dict:
    """One pinned arm: request encodings + the exact response bytes."""
    fmt = make_format(name)
    request_fields = {
        "data_b64": base64.b64encode(x.tobytes()).decode("ascii"),
        "dispatch": "inherit",
        "format": name,
        "op": op,
        "packed": packed,
        "shape": list(x.shape),
    }
    query = (f"format={name}&op={op}&shape="
             f"{','.join(str(d) for d in x.shape)}"
             f"&packed={'1' if packed else '0'}")
    responses = set()
    for dispatch in DISPATCH_MODES:
        from repro.server.client import local_expected
        result = local_expected(x, fmt=name, op=op, dispatch=dispatch,
                                packed=packed)
        responses.add(ghttp.quantize_response(
            result, fmt=name, op=op, packed=packed,
            fingerprint=repr(fmt)).to_bytes())
    assert len(responses) == 1, \
        f"{name}:{op} response bytes differ across dispatch modes"
    if packed:
        pt = encode(fmt, x, op=op, axis=-1, verify=True)
        assert pt.to_bytes() in next(iter(responses))
    return {
        "format": name,
        "op": op,
        "packed": packed,
        "request_json": ghttp.canonical_json(request_fields).decode(),
        "request_query": query,
        "response_hex": next(iter(responses)).hex(),
    }


#: Every status the error contract maps: (case key, exception factory).
#: Messages are fixed strings so the pinned bytes are stable.
ERROR_CASES = (
    ("config_error_400",
     errors.ConfigError("unknown format 'nope'")),
    ("protocol_error_400",
     errors.ProtocolError("bad frame magic")),
    ("format_error_422",
     errors.FormatError("value overflows the target format")),
    ("codec_error_422",
     errors.CodecError("packed container magic mismatch")),
    ("busy_503",
     errors.ServerBusy("server at max in-flight (64); retry")),
    ("draining_503",
     errors.ServerDraining("server is draining for shutdown; "
                           "reconnect and retry")),
    ("timeout_504",
     errors.RequestTimeout("no response to request 1 within 30s")),
    ("connection_lost_502",
     errors.ConnectionLost("server closed the connection before "
                           "answering request 1")),
    ("retry_budget_502",
     errors.RetryBudgetExceeded("m2xfp:weight quantize failed after "
                                "3 attempts")),
    ("server_error_502",
     errors.ServerError("worker failed internally")),
    ("crash_loop_502",
     errors.WorkerCrashLoop("worker slot 0 crashed 6 times; restart "
                            "budget 5 exhausted")),
    ("session_lost_410",
     errors.SessionLost("session 'kv-0' expected append seq 4, got 7; "
                        "the stream cannot be reconciled — reopen and "
                        "replay")),
    ("internal_500",
     RuntimeError("unexpected failure")),
    ("not_found_404",
     ghttp._HttpError(404, "no route for /nope; try /v1/quantize, "
                           "/v1/session/*, /healthz, /metrics")),
    ("method_not_allowed_405",
     ghttp._HttpError(405, "GET not allowed on /v1/quantize; use POST")),
    ("payload_too_large_413",
     ghttp._HttpError(413, "request body of 999 bytes exceeds the "
                           "8-byte limit")),
)


#: Fixed synthetic cluster snapshots for /healthz and /metrics pinning.
#: The ``health`` block mirrors what a live HEALTH reply carries,
#: including the additive ``metrics`` registry snapshot (DESIGN.md §12)
#: that feeds the ``repro_gateway_replica_*`` federation families.
def _replica(state: str, failures: int = 0, ejected: bool = False,
             hits: int = 0) -> dict:
    return {"state": state, "ejected": ejected,
            "consecutive_failures": failures,
            "health": {"draining": state == "draining",
                       "services": {"arms": 2, "requests": 10,
                                    "batches": 5,
                                    "weight_cache_hits": hits},
                       "stats": {"requests": 10,
                                 "busy_rejections": 1 + failures},
                       "sessions": {"open": 1, "max_sessions": 64},
                       "metrics": {
                           "plan_cache": {"compiles": 2, "entries": 2,
                                          "evictions": 0,
                                          "hits": 6 + hits, "misses": 2},
                           "serve.m2xfp:inherit:packed": {
                               "requests": 8, "batches": 4,
                               "weight_cache_hits": hits},
                           "serve.m2xfp:inherit:packed.latency": {
                               "count": 8, "p50": 0.001, "p95": 0.004,
                               "p99": 0.0045},
                       }}}


HEALTH_SNAPSHOTS = {
    "ok": {"requests_total": 42,
           "replicas": {"127.0.0.1:7431": _replica("up", hits=3),
                        "127.0.0.1:7432": _replica("up")}},
    "degraded": {"requests_total": 42,
                 "replicas": {"127.0.0.1:7431": _replica("up"),
                              "127.0.0.1:7432": _replica("down", 2)}},
    "ejected_degraded": {
        "requests_total": 42,
        "replicas": {"127.0.0.1:7431": _replica("up"),
                     "127.0.0.1:7432": _replica("down", 5,
                                                ejected=True)}},
    "down": {"requests_total": 42,
             "replicas": {"127.0.0.1:7431": _replica("down", 4,
                                                     ejected=True),
                          "127.0.0.1:7432": _replica("down", 3,
                                                     ejected=True)}},
}

METRICS_SNAPSHOT = {
    "uptime_s": 12.5,
    "requests_total": 42,
    "http_status": {"200": 40, "400": 1, "503": 1},
    "arms": {
        "m2xfp:weight:packed": {"requests": 30, "rps": 2.4,
                                "p50_ms": 1.25, "p99_ms": 4.5},
        "elem-em:activation:unpacked": {"requests": 12, "rps": 0.96,
                                        "p50_ms": 0.75, "p99_ms": 2.0},
    },
    "upstream": {"busy": 1, "draining": 2, "failovers": 3,
                 "no_replica": 0, "probe_failures": 4,
                 "session_pinned_failures": 1},
    "replica_requests": {"127.0.0.1:7431": 30, "127.0.0.1:7432": 12},
    "replicas": {"127.0.0.1:7431": _replica("up", hits=7),
                 "127.0.0.1:7432": _replica("down", 1)},
}


#: The pinned session configuration (mirrors the wire vectors: a
#: policy override, a token budget and a sink block).
SESSION_CONFIG = {
    "session_id": "golden-kv",
    "n_layers": 2,
    "policy": {"default": "m2xfp", "op": "weight",
               "overrides": {"1": "elem-em"}},
    "max_tokens": 4,
    "sink_tokens": 1,
    "dispatch": "inherit",
    "verify": True,
}


def _session_cases(x: np.ndarray) -> dict:
    """Pinned ``/v1/session/*`` bodies: request JSON + response bytes.

    The ack dicts come from an actual :class:`~repro.kv.KVCacheSession`
    fed slices of the fixed input, built the way the home replica
    builds them — so the pinned bytes cover policy echo, eviction
    counters and the decoded K/V payload, not just the JSON shape.
    """
    from repro.kv import KVCacheSession

    cfg = SESSION_CONFIG
    sid = cfg["session_id"]
    session = KVCacheSession(cfg["n_layers"], cfg["policy"],
                             max_tokens=cfg["max_tokens"],
                             sink_tokens=cfg["sink_tokens"],
                             dispatch=cfg["dispatch"], session_id=sid,
                             verify=cfg["verify"])
    k, v = x[:, :16], x[:, 16:32]
    open_body = ghttp.canonical_json(cfg)
    open_resp = ghttp.session_ack_response(
        {**session.info(), "resumed": False, "next_seq": 0})
    append_fields = {
        "session_id": sid, "layer": 0, "seq": 0,
        "k_b64": base64.b64encode(
            np.ascontiguousarray(k, dtype="<f8").tobytes()).decode(),
        "k_shape": list(k.shape),
        "v_b64": base64.b64encode(
            np.ascontiguousarray(v, dtype="<f8").tobytes()).decode(),
        "v_shape": list(v.shape),
    }
    ack = {**session.append(0, k, v), "seq": 0, "duplicate": False}
    append_resp = ghttp.session_ack_response(ack)
    rk, rv = session.read(0)
    read_resp = ghttp.session_kv_response(rk, rv, session_id=sid,
                                          layer=0)
    close_resp = ghttp.session_ack_response(
        {"session_id": sid, **session.close()})
    return {
        "config": cfg,
        "open": {"request_json": open_body.decode(),
                 "response_hex": open_resp.to_bytes().hex()},
        "append": {"request_json":
                       ghttp.canonical_json(append_fields).decode(),
                   "response_hex": append_resp.to_bytes().hex()},
        "read": {"request_json": ghttp.canonical_json(
                     {"session_id": sid, "layer": 0}).decode(),
                 "response_hex": read_resp.to_bytes().hex()},
        "close": {"request_json": ghttp.canonical_json(
                      {"session_id": sid}).decode(),
                  "response_hex": close_resp.to_bytes().hex()},
    }


def build_payload() -> dict:
    x = _fixed_input()
    payload = {
        "input_hex": [float(v).hex() for v in x.ravel()],
        "shape": list(x.shape),
        "quantize": {},
        "sessions": _session_cases(x),
        "errors": {},
        "healthz": {},
        "metrics": {},
    }
    for name in PINNED:
        for op, packed in (("activation", False), ("weight", True)):
            key = f"{name}:{op}:{'packed' if packed else 'raw'}"
            payload["quantize"][key] = _quantize_case(x, name, op, packed)
    for key, exc in ERROR_CASES:
        response = ghttp.error_response(exc)
        payload["errors"][key] = {
            "exc_type": ("ConfigError" if isinstance(exc, ghttp._HttpError)
                         else type(exc).__name__),
            "message": str(exc),
            "status": response.status,
            "retry_after": dict(response.extra_headers).get("retry-after"),
            "response_hex": response.to_bytes().hex(),
        }
    for key, snapshot in HEALTH_SNAPSHOTS.items():
        for draining in ((False, True) if key == "ok" else (False,)):
            code, body = healthz_summary(snapshot, draining)
            label = "draining" if draining else key
            payload["healthz"][label] = {
                "snapshot": snapshot,
                "status": code,
                "body": json.loads(ghttp.canonical_json(body)),
                "response_hex":
                    ghttp.json_response(body,
                                        status=code).to_bytes().hex(),
            }
    text = render_metrics(METRICS_SNAPSHOT)
    payload["metrics"] = {
        "snapshot": METRICS_SNAPSHOT,
        "text": text,
        "metric_names": sorted({
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE ")}),
    }
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regen", action="store_true",
                        help="actually overwrite the golden file")
    ns = parser.parse_args()
    payload = build_payload()
    if not ns.regen:
        print("dry run (use --regen to write); cases:")
        for key, case in payload["quantize"].items():
            print(f"  {key:28s} response "
                  f"{len(case['response_hex']) // 2:5d} B")
        print(f"  + {len(payload['errors'])} error mappings, "
              f"{len(payload['healthz'])} healthz states, "
              f"{len(payload['metrics']['metric_names'])} metrics")
        return
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
