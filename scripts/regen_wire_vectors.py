"""Regenerate the golden wire-protocol vectors for the quant server.

Run:  PYTHONPATH=src python scripts/regen_wire_vectors.py --regen

Writes ``tests/golden/wire_vectors.json``: a deterministic input tensor
(as ``float.hex()`` text) plus the exact serialized **request and
response frames** — byte for byte, protocol version included — for the
m2xfp / elem-em / m2-nvfp4 arms, covering the raw-float64 and the
packed-container payload encodings — plus the v2 control frames
(PING / HEALTH / DRAIN) with a fixed health-info dict. ``tests/test_server.py`` rebuilds
every frame from the committed inputs with the same construction path
the client and server use and compares hex: any silent change to the
frame header, meta canonicalization, status numbering or payload
encoding fails tier-1.

Like the other ``regen_*`` scripts, run this only when the wire format
changes intentionally — which also means bumping
``repro.server.protocol.PROTOCOL_VERSION`` — and say so in the commit
message.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.codec import encode
from repro.runner.formats import make_format
from repro.server import protocol

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / \
    "wire_vectors.json"

#: The protocol arms whose frames are pinned.
PINNED = ("m2xfp", "elem-em", "m2-nvfp4")


def _fixed_input() -> np.ndarray:
    """A deterministic (2, 64) tensor hitting zeros, ties and outliers."""
    rng = np.random.default_rng(20260728)
    x = rng.standard_normal((2, 64)) * np.exp(rng.standard_normal((2, 64)))
    x[0, 0:5] = [0.0, -0.0, 1e-30, 640.0, -0.4375]
    x[1, 7] = -6.0 * 2.0 ** 5
    return x


def build_payload() -> dict:
    """All pinned frames, keyed ``<format>:<op>:<packed|raw>``.

    Responses are built exactly the way ``QuantServer._respond`` builds
    them: the format's own quantize output (or the codec's container
    bytes) behind ``encode_response_array`` / ``encode_response_packed``
    with the format's fingerprint.
    """
    x = _fixed_input()
    payload = {
        "protocol_version": protocol.PROTOCOL_VERSION,
        "input_hex": [float(v).hex() for v in x.ravel()],
        "shape": list(x.shape),
        "cases": {},
    }
    rid = 0
    for name in PINNED:
        fmt = make_format(name)
        for op, packed in (("activation", False), ("weight", True)):
            rid += 1
            request = protocol.encode_request(
                rid, x, fmt=name, op=op, packed=packed,
                fingerprint=repr(fmt))
            if packed:
                pt = encode(fmt, x, op=op, axis=-1, verify=True)
                response = protocol.encode_response_packed(
                    rid, pt.to_bytes(), fingerprint=repr(fmt))
            else:
                fn = (fmt.quantize_weight if op == "weight"
                      else fmt.quantize_activation)
                response = protocol.encode_response_array(
                    rid, fn(x, axis=-1), fingerprint=repr(fmt))
            payload["cases"][f"{name}:{op}:{'packed' if packed else 'raw'}"] \
                = {
                    "format": name,
                    "op": op,
                    "packed": packed,
                    "request_id": rid,
                    "request_hex": request.hex(),
                    "response_hex": response.hex(),
                }
    payload["control"] = _control_frames()
    return payload


#: A fixed health-info dict so the HEALTH frame bytes are stable. The
#: live server reports the same keys (tests/test_server.py checks that).
HEALTH_INFO = {
    "status": "ok",
    "draining": False,
    "inflight": 0,
    "max_inflight": 64,
    "protocol_version": protocol.PROTOCOL_VERSION,
}


def _control_frames() -> dict:
    """Pinned v2 control frames: PING request, HEALTH reply, DRAIN."""
    rid = 1001
    return {
        "ping_hex": protocol.encode_ping(rid).hex(),
        "health_hex": protocol.encode_health(rid, HEALTH_INFO).hex(),
        "drain_hex": protocol.encode_drain(rid).hex(),
        "request_id": rid,
        "health_info": HEALTH_INFO,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regen", action="store_true",
                        help="actually overwrite the golden file")
    ns = parser.parse_args()
    payload = build_payload()
    if not ns.regen:
        print("dry run (use --regen to write); cases:")
        for key, case in payload["cases"].items():
            print(f"  {key:28s} request {len(case['request_hex']) // 2:5d} B, "
                  f"response {len(case['response_hex']) // 2:5d} B")
        return
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
