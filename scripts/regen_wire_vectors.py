"""Regenerate the golden wire-protocol vectors for the quant server.

Run:  PYTHONPATH=src python scripts/regen_wire_vectors.py --regen

Writes ``tests/golden/wire_vectors.json``: a deterministic input tensor
(as ``float.hex()`` text) plus the exact serialized **request and
response frames** — byte for byte, protocol version included — for the
m2xfp / elem-em / m2-nvfp4 arms, covering the raw-float64 and the
packed-container payload encodings — plus the control frames
(PING / HEALTH / DRAIN) with a fixed health-info dict and the v3
session exchange (SESSION_OPEN / APPEND / READ / CLOSE requests with
their exact ack and K/V response frames, built through a real
``KVCacheSession``). ``tests/test_server.py`` rebuilds
every frame from the committed inputs with the same construction path
the client and server use and compares hex: any silent change to the
frame header, meta canonicalization, status numbering or payload
encoding fails tier-1.

Like the other ``regen_*`` scripts, run this only when the wire format
changes intentionally — which also means bumping
``repro.server.protocol.PROTOCOL_VERSION`` — and say so in the commit
message.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.codec import encode
from repro.runner.formats import make_format
from repro.server import protocol

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / \
    "wire_vectors.json"

#: The protocol arms whose frames are pinned.
PINNED = ("m2xfp", "elem-em", "m2-nvfp4")


def _fixed_input() -> np.ndarray:
    """A deterministic (2, 64) tensor hitting zeros, ties and outliers."""
    rng = np.random.default_rng(20260728)
    x = rng.standard_normal((2, 64)) * np.exp(rng.standard_normal((2, 64)))
    x[0, 0:5] = [0.0, -0.0, 1e-30, 640.0, -0.4375]
    x[1, 7] = -6.0 * 2.0 ** 5
    return x


def build_payload() -> dict:
    """All pinned frames, keyed ``<format>:<op>:<packed|raw>``.

    Responses are built exactly the way ``QuantServer._respond`` builds
    them: the format's own quantize output (or the codec's container
    bytes) behind ``encode_response_array`` / ``encode_response_packed``
    with the format's fingerprint.
    """
    x = _fixed_input()
    payload = {
        "protocol_version": protocol.PROTOCOL_VERSION,
        "input_hex": [float(v).hex() for v in x.ravel()],
        "shape": list(x.shape),
        "cases": {},
    }
    rid = 0
    for name in PINNED:
        fmt = make_format(name)
        for op, packed in (("activation", False), ("weight", True)):
            rid += 1
            request = protocol.encode_request(
                rid, x, fmt=name, op=op, packed=packed,
                fingerprint=repr(fmt))
            if packed:
                pt = encode(fmt, x, op=op, axis=-1, verify=True)
                response = protocol.encode_response_packed(
                    rid, pt.to_bytes(), fingerprint=repr(fmt))
            else:
                fn = (fmt.quantize_weight if op == "weight"
                      else fmt.quantize_activation)
                response = protocol.encode_response_array(
                    rid, fn(x, axis=-1), fingerprint=repr(fmt))
            payload["cases"][f"{name}:{op}:{'packed' if packed else 'raw'}"] \
                = {
                    "format": name,
                    "op": op,
                    "packed": packed,
                    "request_id": rid,
                    "request_hex": request.hex(),
                    "response_hex": response.hex(),
                }
    payload["control"] = _control_frames()
    payload["sessions"] = _session_frames(x)
    return payload


#: A fixed health-info dict so the HEALTH frame bytes are stable. The
#: live server reports the same keys (tests/test_server.py checks that).
HEALTH_INFO = {
    "status": "ok",
    "draining": False,
    "inflight": 0,
    "max_inflight": 64,
    "protocol_version": protocol.PROTOCOL_VERSION,
    # HEALTH meta is additive (DESIGN.md §12): the metrics-registry
    # snapshot rides along without a protocol version bump. A small
    # fixed snapshot keeps the pinned frame deterministic.
    "metrics": {
        "plan_cache": {"compiles": 2, "entries": 2, "evictions": 0,
                       "hits": 3, "misses": 2},
        "serve.m2xfp:inherit:unpacked.latency": {
            "count": 5, "p50": 0.001, "p95": 0.002, "p99": 0.002},
    },
}


def _control_frames() -> dict:
    """Pinned control frames: PING request, HEALTH reply, DRAIN."""
    rid = 1001
    return {
        "ping_hex": protocol.encode_ping(rid).hex(),
        "health_hex": protocol.encode_health(rid, HEALTH_INFO).hex(),
        "drain_hex": protocol.encode_drain(rid).hex(),
        "request_id": rid,
        "health_info": HEALTH_INFO,
    }


#: The pinned session configuration (exercises a policy override, a
#: token budget and a sink block in the acks).
SESSION_CONFIG = {
    "session_id": "golden-kv",
    "n_layers": 2,
    "policy": {"default": "m2xfp", "op": "weight",
               "overrides": {"1": "elem-em"}},
    "max_tokens": 4,
    "sink_tokens": 1,
    "dispatch": "inherit",
    "verify": True,
}


def _session_frames(x: np.ndarray) -> dict:
    """The pinned v3 session exchange, acks built by a real session.

    Request frames come from ``protocol.encode_session_*`` exactly as
    the client sends them; ack/K-V response frames are built the way
    ``QuantServer._session_*`` builds them, with the ack dicts produced
    by an actual :class:`~repro.kv.KVCacheSession` fed slices of the
    fixed input — so the pinned bytes cover the whole construction
    path, not just the frame packer.
    """
    from repro.kv import KVCacheSession

    cfg = SESSION_CONFIG
    sid = cfg["session_id"]
    session = KVCacheSession(cfg["n_layers"], cfg["policy"],
                             max_tokens=cfg["max_tokens"],
                             sink_tokens=cfg["sink_tokens"],
                             dispatch=cfg["dispatch"], session_id=sid,
                             verify=cfg["verify"])
    k, v = x[:, :16], x[:, 16:32]
    rid = 2001
    frames = {
        "config": cfg,
        "open_hex": protocol.encode_session_open(rid, **cfg).hex(),
        "open_ack_hex": protocol.encode_session_ack(
            rid, {**session.info(), "resumed": False,
                  "next_seq": 0}).hex(),
    }
    ack = {**session.append(0, k, v), "seq": 0, "duplicate": False}
    frames["append_hex"] = protocol.encode_session_append(
        rid + 1, session_id=sid, layer=0, seq=0, k=k, v=v).hex()
    frames["append_ack_hex"] = protocol.encode_session_ack(
        rid + 1, ack).hex()
    rk, rv = session.read(0)
    frames["read_hex"] = protocol.encode_session_read(
        rid + 2, session_id=sid, layer=0).hex()
    frames["read_kv_hex"] = protocol.encode_session_kv(
        rid + 2, rk, rv, session_id=sid, layer=0).hex()
    frames["close_hex"] = protocol.encode_session_close(
        rid + 3, session_id=sid).hex()
    frames["close_ack_hex"] = protocol.encode_session_ack(
        rid + 3, {"session_id": sid, **session.close()}).hex()
    frames["request_id"] = rid
    return frames


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regen", action="store_true",
                        help="actually overwrite the golden file")
    ns = parser.parse_args()
    payload = build_payload()
    if not ns.regen:
        print("dry run (use --regen to write); cases:")
        for key, case in payload["cases"].items():
            print(f"  {key:28s} request {len(case['request_hex']) // 2:5d} B, "
                  f"response {len(case['response_hex']) // 2:5d} B")
        return
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
