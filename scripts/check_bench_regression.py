"""Fail when benchmark speedups regress against the committed baselines.

Covers all six committed benchmark files — ``BENCH_kernels.json``
(kernel fast-vs-reference speedups), ``BENCH_codec.json`` (codec /
service / bitstream), ``BENCH_eval.json`` (compiled plans + eval
engine), ``BENCH_server.json`` (network server load test, sharded
vs single worker), ``BENCH_kv.json`` (streaming KV-cache decode
loop, structurally gated) and ``BENCH_obs.json`` (telemetry overhead,
hard-gated: metrics-on rps may cost at most 2% vs ``REPRO_NO_METRICS=1``)
— and exits non-zero if any recorded
*speedup* dropped by more than the threshold (default 20%). Speedups are
compared rather than raw throughput because both sides of a speedup
are measured on the same machine, making the ratio portable across
hardware — the committed baseline may come from a different box than
CI.

Run:  PYTHONPATH=src python scripts/check_bench_regression.py \
          [--suite kernels|codec|eval|server|kv|obs|all] \
          [--baseline PATH] \
          [--candidate PATH] [--threshold 0.2] [--quick]

With no ``--candidate``, a fresh benchmark run supplies the candidate
(``--quick`` shrinks it). Wired into the benchmark suite as opt-in
tests: export ``REPRO_BENCH_REGRESSION=1`` and run
``pytest benchmarks/test_kernel_throughput.py``.
"""

from __future__ import annotations

import argparse
import json
import sys

#: suite -> (baseline file, bench module with run_benchmarks(quick)).
SUITES = {
    "kernels": ("BENCH_kernels.json", "bench_kernels"),
    "codec": ("BENCH_codec.json", "bench_codec"),
    "eval": ("BENCH_eval.json", "bench_eval"),
    "server": ("BENCH_server.json", "bench_server"),
    "kv": ("BENCH_kv.json", "bench_kv"),
    "obs": ("BENCH_obs.json", "bench_obs"),
}

#: suite -> payload sections a candidate run must populate. The server
#: suite's chaos and gateway sections are validated structurally (their
#: absolute rps is machine-dependent, but a fresh run must have
#: *completed* requests — through the fault proxy for chaos, and with
#: exactly matching /metrics counters for the gateway). The kv suite's
#: decode-loop tokens/s are absolute rates, so that part of the gate is
#: purely structural — every baseline format must complete with a
#: positive rate and the wire replay must read back bit-exact. The
#: codec and kv ``fused`` sections compare the fused quantize→pack
#: path against its ``REPRO_NO_FUSED_PACK=1`` fallback and must show
#: the fused arm at least breaking even (``speedup_fused_pack >= 1``).
REQUIRED_SECTIONS = {
    "codec": ("arms", "fused"),
    "server": ("arms", "sharded", "chaos", "gateway"),
    "kv": ("decode_loop", "wire", "fused"),
    "obs": ("registry", "overhead"),
}


def check_sections(suite: str, candidate: dict) -> list[str]:
    """Structural validation failures for a candidate payload."""
    failures = []
    for section in REQUIRED_SECTIONS.get(suite, ()):
        if not candidate.get(section):
            failures.append(f"{suite}: candidate is missing the "
                            f"'{section}' section")
    if suite == "server" and candidate.get("chaos"):
        load = candidate["chaos"].get("load", {})
        if not load.get("requests"):
            failures.append("server: chaos section completed no requests "
                            "through the fault proxy")
    if suite == "server" and candidate.get("gateway"):
        failures += _check_gateway_section(candidate["gateway"])
    if suite == "kv":
        failures += _check_kv_sections(candidate)
    if suite in ("codec", "kv") and candidate.get("fused"):
        failures += _check_fused_section(suite, candidate["fused"])
    if suite == "obs":
        failures += _check_obs_section(candidate)
    return failures


#: The hard ceiling on the metrics-on throughput cost (ISSUE 10): the
#: observability contract is that leaving the registry enabled costs at
#: most this fraction of requests/s vs ``REPRO_NO_METRICS=1``.
OBS_OVERHEAD_CEILING = 0.02


def _check_obs_section(candidate: dict) -> list[str]:
    """The telemetry bench must record per-op instrument costs for both
    the enabled and the ``REPRO_NO_METRICS=1`` paths, and the measured
    end-to-end overhead fraction must sit under the 2% ceiling — a hard
    gate, no threshold grace: both sides of the ratio come from the
    same interleaved run on the same machine."""
    failures = []
    registry = candidate.get("registry", {})
    for mode in ("enabled", "disabled"):
        ops = registry.get(mode, {})
        for op in ("counter_inc", "histogram_observe", "snapshot"):
            rate = ops.get(op, {}).get("ops_per_s")
            if not (isinstance(rate, (int, float)) and rate > 0):
                failures.append(f"obs: registry[{mode}][{op}] has no "
                                f"positive 'ops_per_s'")
    overhead = candidate.get("overhead", {})
    for key in ("rps_on", "rps_off"):
        if not (isinstance(overhead.get(key), (int, float))
                and overhead[key] > 0):
            failures.append(f"obs: overhead section has no positive "
                            f"'{key}'")
    frac = overhead.get("overhead_frac")
    if not isinstance(frac, (int, float)):
        failures.append("obs: overhead section has no 'overhead_frac'")
    elif frac > OBS_OVERHEAD_CEILING:
        failures.append(
            f"obs: metrics-on overhead {frac:.2%} exceeds the "
            f"{OBS_OVERHEAD_CEILING:.0%} ceiling "
            f"({overhead.get('rps_on')} rps on vs "
            f"{overhead.get('rps_off')} rps off)")
    return failures


def _check_fused_section(suite: str, fused: dict) -> list[str]:
    """Every fused-vs-unfused arm must record its ratio, and the fused
    quantize→pack path must not be *slower* than re-deriving codes from
    dequantized floats — if it is, the zero-copy encode has regressed
    into pure overhead and the run fails outright (no 20% grace: the
    fallback is the same machine, same run). Both suites measure the
    gated ratio under the serving-default ``verify=True`` configuration,
    where the fused cross-check is an O(bytes) compare instead of a full
    re-quantization."""
    failures = []
    for arm, row in sorted(fused.items()):
        ratio = row.get("speedup_fused_pack") if isinstance(row, dict) else None
        if not isinstance(ratio, (int, float)):
            failures.append(f"{suite}: fused arm '{arm}' has no "
                            f"'speedup_fused_pack' ratio")
        elif ratio < 1.0:
            failures.append(
                f"{suite}: fused arm '{arm}' is slower than the "
                f"REPRO_NO_FUSED_PACK fallback "
                f"({ratio:.2f}x < 1.00x)")
    return failures


def _check_kv_sections(candidate: dict) -> list[str]:
    """The KV decode loop must complete every format arm at a positive
    rate, and the wire replay must have read back bit-exactly."""
    failures = []
    for fmt, row in sorted(candidate.get("decode_loop", {}).items()):
        for key in ("tokens_per_s", "appends_per_s"):
            if not (isinstance(row.get(key), (int, float))
                    and row[key] > 0):
                failures.append(f"kv: decode_loop '{fmt}' has no "
                                f"positive '{key}'")
        if row.get("verify") is not True:
            failures.append(f"kv: decode_loop '{fmt}' did not run with "
                            f"verify=True (the serving default)")
    wire = candidate.get("wire", {})
    if wire:
        if not (isinstance(wire.get("tokens_per_s"), (int, float))
                and wire["tokens_per_s"] > 0):
            failures.append("kv: wire section has no positive "
                            "'tokens_per_s'")
        if wire.get("read_bit_exact") is not True:
            failures.append("kv: wire session READ was not bit-exact "
                            "against the local session")
    return failures


def _check_gateway_section(gateway: dict) -> list[str]:
    """The gateway scaling curve must be complete and self-consistent:
    every replica point present and loaded, every ``scaling_*`` ratio
    recorded, and the /metrics counters an *exact* match against the
    harness's own completed-request tally."""
    failures = []
    points = gateway.get("points", {})
    for key in ("r1", "r2", "r4"):
        point = points.get(key)
        if not point:
            failures.append(f"server: gateway section is missing the "
                            f"'{key}' replica point")
            continue
        if not point.get("requests"):
            failures.append(f"server: gateway point '{key}' completed "
                            f"no requests")
        cross = gateway.get("metrics_crosscheck", {}).get(key, {})
        if not cross.get("matched"):
            failures.append(
                f"server: gateway point '{key}' /metrics counters do "
                f"not match the harness tally "
                f"({cross.get('metrics_requests_total')} vs "
                f"{cross.get('harness_completed')})")
    for ratio in ("scaling_r2_vs_r1", "scaling_r4_vs_r1"):
        if not isinstance(gateway.get(ratio), (int, float)):
            failures.append(f"server: gateway section is missing the "
                            f"'{ratio}' ratio")
    return failures


def _speedups(payload, path=()) -> dict[str, float]:
    """All ``speedup*`` numbers in a payload, keyed by their JSON path.

    Pre-PR columns (``speedup_vs_pre_pr``) and the embedded ``pre_pr``
    section are skipped: they compare against a checkout a fresh run
    cannot reproduce.
    """
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        if "warm_s" in payload:
            # Cache-effect rows (e.g. the QuantizedLM weight-cache entry)
            # are informational: their ratio measures a ~zero-cost hit
            # and swings by orders of magnitude between runs.
            return out
        for key, value in payload.items():
            if key == "pre_pr":
                continue
            if key.startswith("speedup") and key != "speedup_vs_pre_pr" \
                    and isinstance(value, (int, float)):
                out["/".join((*path, key))] = float(value)
            else:
                out.update(_speedups(value, (*path, str(key))))
    return out


def compare(baseline: dict, candidate: dict, threshold: float = 0.2) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    base = _speedups(baseline)
    cand = _speedups(candidate)
    for name in sorted(base):
        if name not in cand:
            failures.append(f"{name}: missing from candidate run")
            continue
        floor = base[name] * (1.0 - threshold)
        if cand[name] < floor:
            failures.append(
                f"{name}: speedup {cand[name]:.2f}x < {floor:.2f}x "
                f"(baseline {base[name]:.2f}x - {threshold:.0%})")
    return failures


def run_check(baseline_path: str, candidate_path: str | None,
              threshold: float, quick: bool,
              bench_module: str = "bench_kernels",
              suite: str | None = None) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    if candidate_path is not None:
        with open(candidate_path) as f:
            candidate = json.load(f)
    else:
        module = __import__(bench_module)
        candidate = module.run_benchmarks(quick=quick)
    failures = compare(baseline, candidate, threshold)
    if suite is not None:
        failures += check_sections(suite, candidate)
    base = _speedups(baseline)
    cand = _speedups(candidate)
    for name in sorted(base):
        if name in cand:
            print(f"  {name:>48}: baseline {base[name]:6.2f}x  "
                  f"candidate {cand[name]:6.2f}x")
    if failures:
        print("THROUGHPUT REGRESSION:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print(f"no throughput regression vs {baseline_path}")
    return 0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--suite", default="kernels",
                    choices=[*SUITES, "all"])
    ap.add_argument("--baseline", default=None,
                    help="override the suite's committed baseline path")
    ap.add_argument("--candidate", default=None,
                    help="pre-recorded candidate JSON; omitted = run fresh")
    ap.add_argument("--threshold", type=float, default=0.2)
    ap.add_argument("--quick", action="store_true",
                    help="fresh runs use smaller tensors")
    args = ap.parse_args()
    if args.suite == "all" and (args.baseline or args.candidate):
        ap.error("--baseline/--candidate name one file and cannot be "
                 "combined with --suite all")
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    rc = 0
    for suite in suites:
        baseline, module = SUITES[suite]
        rc |= run_check(args.baseline or baseline, args.candidate,
                        args.threshold, args.quick, bench_module=module,
                        suite=suite)
    sys.exit(rc)


if __name__ == "__main__":
    main()
