"""Fail when kernel throughput regresses against the committed baseline.

Compares a candidate ``BENCH_kernels.json`` (a fresh run by default)
against the committed baseline and exits non-zero if any kernel's
fast-path *speedup over the reference* dropped by more than the
threshold (default 20%). Speedup is compared rather than raw
elements/sec because both runs of a speedup measurement happen on the
same machine, making the ratio portable across hardware — the committed
baseline may come from a different box than CI.

Run:  PYTHONPATH=src python scripts/check_bench_regression.py \
          [--baseline BENCH_kernels.json] [--candidate fresh.json] \
          [--threshold 0.2] [--quick]

Wired into the benchmark suite as an opt-in test: export
``REPRO_BENCH_REGRESSION=1`` and run ``pytest benchmarks/test_kernel_throughput.py``.
"""

from __future__ import annotations

import argparse
import json
import sys


def compare(baseline: dict, candidate: dict, threshold: float = 0.2) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    base_kernels = baseline.get("kernels", {})
    cand_kernels = candidate.get("kernels", {})
    for name, base in sorted(base_kernels.items()):
        if "speedup" not in base or "ref_s" not in base:
            continue  # informational rows (e.g. the weight-cache entry)
        cand = cand_kernels.get(name)
        if cand is None:
            failures.append(f"{name}: missing from candidate run")
            continue
        floor = base["speedup"] * (1.0 - threshold)
        if cand["speedup"] < floor:
            failures.append(
                f"{name}: speedup {cand['speedup']:.2f}x < "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x - {threshold:.0%})")
    return failures


def run_check(baseline_path: str, candidate_path: str | None,
              threshold: float, quick: bool) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    if candidate_path is not None:
        with open(candidate_path) as f:
            candidate = json.load(f)
    else:
        from bench_kernels import run_benchmarks
        candidate = run_benchmarks(quick=quick)
    failures = compare(baseline, candidate, threshold)
    for name, base in sorted(baseline.get("kernels", {}).items()):
        cand = candidate.get("kernels", {}).get(name, {})
        if "speedup" in base and "speedup" in cand and "ref_s" in base:
            print(f"  {name:>24}: baseline {base['speedup']:6.2f}x  "
                  f"candidate {cand['speedup']:6.2f}x")
    if failures:
        print("THROUGHPUT REGRESSION:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print("no kernel throughput regression")
    return 0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_kernels.json")
    ap.add_argument("--candidate", default=None,
                    help="pre-recorded candidate JSON; omitted = run fresh")
    ap.add_argument("--threshold", type=float, default=0.2)
    ap.add_argument("--quick", action="store_true",
                    help="fresh runs use smaller tensors")
    args = ap.parse_args()
    sys.exit(run_check(args.baseline, args.candidate, args.threshold, args.quick))


if __name__ == "__main__":
    main()
