"""Closed-loop load generator for the network quantization server.

Measures, per (format, operand-path, packed) arm and concurrency level:

* **requests/s** — closed loop: each client thread keeps exactly one
  request in flight on its own connection, so offered load tracks
  service rate (no coordinated-omission artifacts);
* **p50 / p99 latency** — per-request wall time, protocol round trip
  included.

Plus the **sharding** section: the same closed-loop load against a
spawn-based :class:`~repro.server.WorkerPool` with one worker vs two,
on the m2xfp activation arm. The sharded section runs a
throughput-tuned batching window (``SHARD_DELAY_S``, larger than the
latency-oriented default used for the per-arm table): a single worker's
cycle is ``window + T(all requests)`` with the CPU idle for the whole
window, while each sharded worker's cycle is ``window + T(half)`` and
one worker's CPU-bound quantize pass overlaps the other's collection
window. That overlap pays even on a single core (measured here); on
multi-core hosts the passes additionally run truly in parallel.
``speedup_sharded_vs_single`` records the measured requests/s ratio.

Plus the **chaos** section: the same closed loop pushed through a
:class:`~repro.server.FaultProxy` that kills 1% of connections
mid-frame, with clients running their reconnect-retry budget. It
records the fault-tolerance tax on rps/p99 — every completed request
is still bit-exact (that part is asserted by ``tests/test_faults.py``;
the bench records the throughput cost).

Plus the **gateway** section: the same closed loop spoken over HTTP
through :class:`~repro.gateway.QuantGateway` fronting a
:class:`~repro.gateway.ReplicaCluster` of 1, 2 and 4 replicas, with
clients cycling several formats so the consistent-hash router spreads
arms across replicas. Each point records rps/p50/p99 plus an **exact**
crosscheck of the gateway's ``/metrics`` ``requests_total`` counters
against the harness's own completed-request tally (the counters must
not drift by even one request). ``scaling_*`` ratios record the
replica-scaling curve; on a single-core host they hover near 1.0
(replicas time-slice one CPU), so they are reported, not gated.

Run:  PYTHONPATH=src python scripts/bench_server.py [--out PATH]
      [--quick] [--chaos]

``--chaos`` runs only the fault-injection section. Writes
``BENCH_server.json``. Absolute requests/s are machine-dependent; the
speedup ratio is the stable, regression-gated part
(``scripts/check_bench_regression.py --suite server``).
"""

from __future__ import annotations

import argparse
import base64
import http.client
import json
import threading
import time

import numpy as np

from repro.errors import ServerBusy
from repro.gateway import GatewayThread, ReplicaCluster
from repro.obs import Histogram
from repro.server import (FaultPlan, FaultProxy, QuantClient, ServerThread,
                          WorkerPool)

DEFAULT_OUT = "BENCH_server.json"


def _latency_summary(samples) -> dict:
    """p50/p99 (ms) through the obs :class:`Histogram`, so the bench's
    percentile math is the repo-wide nearest-rank definition the server
    and gateway expose (DESIGN.md §12). ``tests/test_obs.py``
    crosschecks this helper against ``Histogram.quantile`` directly."""
    hist = Histogram(window=max(len(samples), 1), gated=False)
    for v in samples:
        hist.observe(v)
    return {"p50_ms": round(hist.quantile(0.50) * 1e3, 3),
            "p99_ms": round(hist.quantile(0.99) * 1e3, 3)}

#: (catalog name, operand path, packed) load arms.
ARMS = (
    ("m2xfp", "activation", False),
    ("m2xfp", "activation", True),
    ("elem-em", "activation", False),
    ("elem-em", "activation", True),
    ("m2-nvfp4", "activation", False),
    ("m2-nvfp4", "activation", True),
)

#: The arm the sharded-vs-single comparison runs on.
SHARDED_ARM = ("m2xfp", "activation", False)

#: Latency-oriented micro-batch window for the per-arm table (the
#: server default).
MAX_DELAY_S = 0.002

#: Throughput-tuned window for the sharding comparison — identical for
#: the single and the sharded pool, sized so batch formation (not the
#: quantize pass) dominates a worker's cycle.
SHARD_DELAY_S = 0.008

#: Per-frame connection-kill probability for the chaos section (~1% of
#: connections die mid-conversation; clients retry through it).
CHAOS_KILL_PROB = 0.01

#: Retry budget the chaos clients run with.
CHAOS_RETRIES = 20

#: Formats the gateway load cycles through — spread over the hash ring
#: so a multi-replica cluster actually shares the traffic.
GATEWAY_FORMATS = ("m2xfp", "elem-em", "m2-nvfp4", "nvfp4")

#: Cluster sizes for the gateway scaling curve.
GATEWAY_REPLICAS = (1, 2, 4)


def _run_load(port: int, fmt: str, op: str, packed: bool,
              concurrency: int, duration_s: float,
              x: np.ndarray, retries: int = 0) -> dict:
    """Closed-loop hammer: ``concurrency`` threads, one connection each."""
    barrier = threading.Barrier(concurrency + 1)
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    busy = [0] * concurrency
    errors: list[BaseException] = []
    stop = threading.Event()

    def worker(slot: int) -> None:
        try:
            with QuantClient(port=port, timeout=120.0, retries=retries,
                             backoff_base_s=0.005, backoff_max_s=0.1,
                             retry_seed=slot) as cli:
                for _ in range(3):  # warm the service/plan caches
                    cli.quantize(x, fmt=fmt, op=op, packed=packed)
                barrier.wait()
                while not stop.is_set():
                    t0 = time.perf_counter()
                    try:
                        cli.quantize(x, fmt=fmt, op=op, packed=packed)
                    except ServerBusy:
                        busy[slot] += 1
                        continue
                    latencies[slot].append(time.perf_counter() - t0)
        except BaseException as exc:  # surfaced after the join
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=worker, args=(s,))
               for s in range(concurrency)]
    for t in threads:
        t.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass  # a worker failed during warm-up; surface its error below
    t_start = time.perf_counter()
    if not errors:
        time.sleep(duration_s)
    stop.set()
    for t in threads:
        t.join(timeout=120)
    elapsed = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    lats = [v for slot in latencies for v in slot]
    return {
        "concurrency": concurrency,
        "requests": len(lats),
        "busy_rejections": int(sum(busy)),
        "rps": round(len(lats) / elapsed, 1),
        **_latency_summary(lats),
    }


def run_chaos(quick: bool, x: np.ndarray) -> dict:
    """The fault-injection load arm: 1% connection kills, retrying clients."""
    fmt, op, packed = SHARDED_ARM
    duration = 1.0 if quick else 2.5
    concurrency = 4 if quick else 8
    plan = FaultPlan(seed=0, kill_prob=CHAOS_KILL_PROB)
    with ServerThread(port=0, max_delay_s=MAX_DELAY_S) as st, \
            FaultProxy(target_port=st.port, plan=plan) as px:
        res = _run_load(px.port, fmt, op, packed, concurrency=concurrency,
                        duration_s=duration, x=x, retries=CHAOS_RETRIES)
    section = {
        "format": fmt, "op": op, "packed": packed,
        "kill_prob": CHAOS_KILL_PROB, "retries": CHAOS_RETRIES,
        "load": res,
        "proxy": dict(px.stats),
    }
    print(f"  chaos {fmt}:{op} (kill_prob={CHAOS_KILL_PROB}): "
          f"{res['rps']:8.1f} rps  p99 {res['p99_ms']:7.3f} ms  "
          f"({px.stats['killed']} kills over "
          f"{px.stats['connections']} connections)")
    return section


def _run_http_load(port: int, concurrency: int, duration_s: float,
                   x: np.ndarray) -> dict:
    """Closed-loop HTTP hammer against a gateway: ``concurrency``
    keep-alive connections, each cycling :data:`GATEWAY_FORMATS`.

    Returns per-point rps/p50/p99 plus ``completed_total`` — every
    successful quantize this function ever sent (warm-up included),
    the number the gateway's ``requests_total`` must match exactly.
    """
    bodies = [json.dumps({
        "format": fmt, "op": "activation", "packed": False,
        "shape": list(x.shape),
        "data_b64": base64.b64encode(x.tobytes()).decode()})
        for fmt in GATEWAY_FORMATS]
    headers = {"Content-Type": "application/json"}
    barrier = threading.Barrier(concurrency + 1)
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    completed = [0] * concurrency
    errors: list[BaseException] = []
    stop = threading.Event()

    def worker(slot: int) -> None:
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port,
                                              timeout=120.0)
            try:
                for body in bodies:  # warm every arm's plan/service
                    conn.request("POST", "/v1/quantize", body, headers)
                    resp = conn.getresponse()
                    payload = resp.read()
                    if resp.status != 200:
                        raise RuntimeError(f"warm-up got {resp.status}: "
                                           f"{payload!r}")
                    completed[slot] += 1
                barrier.wait()
                i = slot  # offset start so threads desynchronize arms
                while not stop.is_set():
                    body = bodies[i % len(bodies)]
                    i += 1
                    t0 = time.perf_counter()
                    conn.request("POST", "/v1/quantize", body, headers)
                    resp = conn.getresponse()
                    payload = resp.read()
                    if resp.status != 200:
                        raise RuntimeError(f"gateway got {resp.status}: "
                                           f"{payload!r}")
                    completed[slot] += 1
                    latencies[slot].append(time.perf_counter() - t0)
            finally:
                conn.close()
        except BaseException as exc:  # surfaced after the join
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=worker, args=(s,))
               for s in range(concurrency)]
    for t in threads:
        t.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass
    t_start = time.perf_counter()
    if not errors:
        time.sleep(duration_s)
    stop.set()
    for t in threads:
        t.join(timeout=120)
    elapsed = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    lats = [v for slot in latencies for v in slot]
    return {
        "concurrency": concurrency,
        "requests": len(lats),
        "completed_total": int(sum(completed)),
        "rps": round(len(lats) / elapsed, 1),
        **_latency_summary(lats),
    }


def _scrape_requests_total(port: int) -> int:
    """Sum the ``repro_gateway_requests_total`` samples off /metrics."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    try:
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        text = resp.read().decode()
        if resp.status != 200:
            raise RuntimeError(f"/metrics got {resp.status}")
    finally:
        conn.close()
    total = 0
    for line in text.splitlines():
        if line.startswith("repro_gateway_requests_total{"):
            total += int(float(line.rsplit(" ", 1)[1]))
    return total


def run_gateway(quick: bool, x: np.ndarray) -> dict:
    """The HTTP gateway scaling curve: 1/2/4-replica closed loop."""
    duration = 1.0 if quick else 2.5
    concurrency = 4 if quick else 8
    section: dict = {
        "formats": list(GATEWAY_FORMATS),
        "concurrency": concurrency,
        "duration_s": duration,
        "points": {},
        "metrics_crosscheck": {},
    }
    for replicas in GATEWAY_REPLICAS:
        with ReplicaCluster(replicas=replicas,
                            max_delay_s=MAX_DELAY_S) as cluster, \
                GatewayThread(upstreams=cluster.endpoints, port=0,
                              probe_interval_s=0.5) as gw:
            res = _run_http_load(gw.port, concurrency=concurrency,
                                 duration_s=duration, x=x)
            scraped = _scrape_requests_total(gw.port)
            snap = gw.gateway.snapshot()
        point = dict(res)
        point["replicas"] = replicas
        point["metrics_requests_total"] = scraped
        point["replica_spread"] = snap["replica_requests"]
        matched = (scraped == res["completed_total"]
                   == snap["requests_total"])
        section["metrics_crosscheck"][f"r{replicas}"] = {
            "harness_completed": res["completed_total"],
            "metrics_requests_total": scraped,
            "matched": matched,
        }
        section["points"][f"r{replicas}"] = point
        print(f"  gateway r={replicas}: {res['rps']:8.1f} rps  "
              f"p50 {res['p50_ms']:7.3f} ms  "
              f"p99 {res['p99_ms']:7.3f} ms  "
              f"metrics {'==' if matched else '!='} harness "
              f"({scraped} vs {res['completed_total']})")
        if not matched:
            raise RuntimeError(
                f"gateway metrics drifted at r={replicas}: "
                f"/metrics says {scraped}, harness counted "
                f"{res['completed_total']}")
    r1 = section["points"]["r1"]["rps"]
    for replicas in GATEWAY_REPLICAS[1:]:
        section[f"scaling_r{replicas}_vs_r1"] = round(
            section["points"][f"r{replicas}"]["rps"] / r1, 3)
    return section


def run_benchmarks(quick: bool = False) -> dict:
    """Run every load arm plus the sharding comparison; returns the payload."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 256))
    duration = 0.25 if quick else 1.0
    levels = (1, 4) if quick else (1, 4, 8)
    payload: dict = {
        "config": {
            "tensor_shape": list(x.shape),
            "duration_s": duration,
            "max_delay_s": MAX_DELAY_S,
            "quick": quick,
        },
        "arms": {},
        "sharded": {},
        "chaos": {},
        "gateway": {},
    }

    with ServerThread(port=0, max_delay_s=MAX_DELAY_S) as st:
        for fmt, op, packed in ARMS:
            key = f"{fmt}:{op}:{'packed' if packed else 'unpacked'}"
            arm: dict = {}
            for c in levels:
                arm[f"c{c}"] = _run_load(st.port, fmt, op, packed,
                                         concurrency=c,
                                         duration_s=duration, x=x)
                print(f"  {key:28s} c={c}: "
                      f"{arm[f'c{c}']['rps']:8.1f} rps  "
                      f"p50 {arm[f'c{c}']['p50_ms']:7.3f} ms  "
                      f"p99 {arm[f'c{c}']['p99_ms']:7.3f} ms")
            payload["arms"][key] = arm

    fmt, op, packed = SHARDED_ARM
    shard_conc = 12 if quick else 16
    shard_duration = 1.0 if quick else 2.5
    results = {}
    for label, workers in (("single", 1), ("sharded", 2)):
        with WorkerPool(workers=workers, port=0,
                        max_delay_s=SHARD_DELAY_S) as pool:
            res = _run_load(pool.port, fmt, op, packed,
                            concurrency=shard_conc,
                            duration_s=shard_duration, x=x)
            res["workers"] = workers
            results[label] = res
            print(f"  {fmt}:{op} {label} ({workers} worker"
                  f"{'s' if workers > 1 else ''}): {res['rps']:8.1f} rps")
    payload["sharded"] = {
        "format": fmt, "op": op, "packed": packed,
        "concurrency": shard_conc,
        "max_delay_s": SHARD_DELAY_S,
        "single": results["single"],
        "sharded": results["sharded"],
        "speedup_sharded_vs_single": round(
            results["sharded"]["rps"] / results["single"]["rps"], 3),
    }
    print(f"  sharded-vs-single speedup: "
          f"{payload['sharded']['speedup_sharded_vs_single']:.2f}x")
    payload["chaos"] = run_chaos(quick, x)
    payload["gateway"] = run_gateway(quick, x)
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="shorter windows, fewer concurrency levels")
    parser.add_argument("--chaos", action="store_true",
                        help="run only the fault-injection section")
    ns = parser.parse_args()
    if ns.chaos:
        rng = np.random.default_rng(0)
        payload = {
            "config": {"quick": ns.quick, "chaos_only": True},
            "chaos": run_chaos(ns.quick, rng.standard_normal((16, 256))),
        }
    else:
        payload = run_benchmarks(quick=ns.quick)
    with open(ns.out, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {ns.out}")


if __name__ == "__main__":
    main()
