"""Documentation consistency checks (wired into tier-1 via tests/test_docs.py).

Three guarantees, so the docs cannot silently rot:

1. the entry-point documents exist (README.md, DESIGN.md, EXPERIMENTS.md,
   ROADMAP.md) — EXPERIMENTS.md once linked a DESIGN.md that did not;
2. every *relative* markdown link in the root documents resolves to a
   real file or directory;
3. the README's environment-knob table stays in sync with the source:
   every ``REPRO_*`` name used under ``src/`` or ``scripts/`` appears in
   the table (the ``REPRO_SERVER_*`` serving knobs included), and every table
   entry appears somewhere in ``src/``, ``scripts/``, ``benchmarks/``,
   ``tests/`` or ``examples/``.

Run:  python scripts/check_docs.py   (exit 1 + a report on any problem)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

REQUIRED_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

#: Root documents whose links are validated.
LINKED_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
               "PAPER.md", "CHANGES.md")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_KNOB_RE = re.compile(r"\bREPRO_[A-Z0-9_]+\b")

#: Where knob *definitions/uses* may legitimately live.
KNOB_SOURCE_DIRS = ("src", "scripts", "benchmarks", "tests", "examples")


def check_required_docs(repo: Path = REPO) -> list[str]:
    """Problem strings for missing entry-point documents."""
    return [f"missing required document: {name}"
            for name in REQUIRED_DOCS if not (repo / name).is_file()]


def check_markdown_links(repo: Path = REPO) -> list[str]:
    """Problem strings for relative links that do not resolve."""
    problems = []
    for name in LINKED_DOCS:
        doc = repo / name
        if not doc.is_file():
            continue
        for target in _LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (repo / path).exists():
                problems.append(f"{name}: dangling link -> {target}")
    return problems


def knobs_in_source(repo: Path = REPO) -> set[str]:
    """Every REPRO_* name referenced under src/ or scripts/ (code is
    ground truth — scripts included, so a bench-only knob like a
    benchmark arm switch cannot dodge the README table)."""
    found = set()
    checker = Path(__file__).resolve()
    for d in ("src", "scripts"):
        for path in (repo / d).rglob("*.py"):
            if path.resolve() == checker:
                # This file's own docstring names knob *prefixes*
                # (REPRO_SERVER_*), not knob uses.
                continue
            found.update(_KNOB_RE.findall(path.read_text()))
    return found


def knobs_in_readme_table(repo: Path = REPO) -> set[str]:
    """REPRO_* names documented in README's environment-knob table rows."""
    readme = repo / "README.md"
    if not readme.is_file():
        return set()
    found = set()
    for line in readme.read_text().splitlines():
        if line.startswith("|"):
            found.update(_KNOB_RE.findall(line))
    return found


def check_env_knob_table(repo: Path = REPO) -> list[str]:
    """Problem strings for README-table/source drift, both directions."""
    problems = []
    in_src = knobs_in_source(repo)
    in_table = knobs_in_readme_table(repo)
    for knob in sorted(in_src - in_table):
        problems.append(f"README.md env-knob table is missing {knob} "
                        f"(referenced under src/ or scripts/)")
    referenced = set()
    for d in KNOB_SOURCE_DIRS:
        for path in (repo / d).rglob("*.py"):
            referenced.update(_KNOB_RE.findall(path.read_text()))
    for knob in sorted(in_table - referenced):
        problems.append(f"README.md env-knob table documents {knob}, "
                        f"which nothing in {'/'.join(KNOB_SOURCE_DIRS)} uses")
    return problems


def run_all(repo: Path = REPO) -> list[str]:
    """All doc problems (empty list == healthy)."""
    return (check_required_docs(repo) + check_markdown_links(repo)
            + check_env_knob_table(repo))


def main() -> int:
    problems = run_all()
    if problems:
        print("documentation problems:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("docs OK: required files present, links resolve, "
          "env-knob table in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
