"""Pin the observability subsystem's overhead (ISSUE 10 tentpole).

Two sections, both consumed by
``scripts/check_bench_regression.py --suite obs``:

* **registry** — per-operation cost of the hot-path instruments
  (``Counter.inc``, ``Histogram.observe``) and of a full
  ``MetricsRegistry.snapshot``, measured with metrics **enabled** and
  with ``REPRO_NO_METRICS=1``. The disabled numbers pin the promise
  that a gated write degenerates to one env check.
* **overhead** — end-to-end :class:`~repro.serve.QuantService`
  requests/s with metrics on vs off, run as **interleaved** trials
  (on/off/on/off…) so drift in machine load hits both modes equally.
  ``overhead_frac`` is the fractional rps cost of leaving metrics on
  (clamped at 0); the regression gate hard-fails above 2%.

No ``speedup_*`` keys on purpose: the observability contract is "costs
(almost) nothing", not "makes anything faster", and near-1.0 ratios
under the generic speedup floor would only add flakiness.

Run:  PYTHONPATH=src python scripts/bench_obs.py [--out PATH] [--quick]

Writes ``BENCH_obs.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from contextlib import contextmanager

import numpy as np

from repro.obs import NO_METRICS_ENV, Counter, Histogram, MetricsRegistry
from repro.serve import QuantService

DEFAULT_OUT = "BENCH_obs.json"

#: The arm the end-to-end overhead comparison runs on.
OVERHEAD_ARM = ("m2xfp", "activation")


@contextmanager
def _metrics(enabled: bool):
    """Force metrics on or off for the duration of the block."""
    prev = os.environ.get(NO_METRICS_ENV)
    os.environ[NO_METRICS_ENV] = "" if enabled else "1"
    try:
        yield
    finally:
        if prev is None:
            del os.environ[NO_METRICS_ENV]
        else:
            os.environ[NO_METRICS_ENV] = prev


def _per_op(fn, n: int) -> dict:
    """ns/op and ops/s for ``n`` calls of ``fn`` (best of 3 passes)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return {"ns_per_op": round(best / n * 1e9, 1),
            "ops_per_s": round(n / best, 1)}


def bench_registry(quick: bool) -> dict:
    """Per-op instrument/snapshot cost, metrics on vs off."""
    n = 20_000 if quick else 200_000
    n_snap = 200 if quick else 2_000
    reg = MetricsRegistry()
    for i in range(8):
        c = reg.counter(f"bench.c{i}")
        c.inc()
        h = reg.histogram(f"bench.h{i}")
        h.observe(0.001 * i)
    reg.register_collector("bench.collector",
                           lambda: {"requests": 1, "batches": 1})
    counter = Counter()
    hist = Histogram()
    section: dict = {"ops": n, "snapshot_ops": n_snap}
    for label, enabled in (("enabled", True), ("disabled", False)):
        with _metrics(enabled):
            section[label] = {
                "counter_inc": _per_op(counter.inc, n),
                "histogram_observe": _per_op(
                    lambda: hist.observe(0.001), n),
                "snapshot": _per_op(reg.snapshot, n_snap),
            }
        print(f"  registry [{label}]: "
              f"inc {section[label]['counter_inc']['ns_per_op']:8.1f} "
              f"ns/op  observe "
              f"{section[label]['histogram_observe']['ns_per_op']:8.1f} "
              f"ns/op  snapshot "
              f"{section[label]['snapshot']['ns_per_op']:10.1f} ns/op")
    return section


def _service_rps(fmt: str, op: str, x: np.ndarray,
                 duration_s: float) -> float:
    """Closed-loop single-submitter requests/s on a fresh service."""
    with QuantService(fmt, max_batch=32, max_delay_s=0.0) as svc:
        for _ in range(5):  # warm the plan/service caches
            svc.submit(x, op=op).result()
        n = 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < duration_s:
            svc.submit(x, op=op).result()
            n += 1
        elapsed = time.perf_counter() - t0
    return n / elapsed


def bench_overhead(quick: bool, x: np.ndarray) -> dict:
    """End-to-end QuantService rps, metrics on vs off, interleaved."""
    fmt, op = OVERHEAD_ARM
    duration = 0.2 if quick else 0.6
    trials = 3 if quick else 5
    on, off = [], []
    for _ in range(trials):  # interleave so load drift hits both modes
        with _metrics(True):
            on.append(_service_rps(fmt, op, x, duration))
        with _metrics(False):
            off.append(_service_rps(fmt, op, x, duration))
    rps_on, rps_off = max(on), max(off)
    overhead = max(0.0, 1.0 - rps_on / rps_off)
    section = {
        "format": fmt, "op": op,
        "trials": trials, "duration_s": duration,
        "rps_on": round(rps_on, 1),
        "rps_off": round(rps_off, 1),
        "overhead_frac": round(overhead, 4),
    }
    print(f"  overhead {fmt}:{op}: {rps_on:8.1f} rps on / "
          f"{rps_off:8.1f} rps off  -> {overhead * 100:.2f}% "
          f"(gate: <= 2%)")
    return section


def run_benchmarks(quick: bool = False) -> dict:
    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 256))
    payload: dict = {
        "config": {"tensor_shape": list(x.shape), "quick": quick},
        "registry": bench_registry(quick),
        "overhead": {},
    }
    payload["overhead"] = bench_overhead(quick, x)
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="fewer ops, shorter trials")
    ns = parser.parse_args()
    payload = run_benchmarks(quick=ns.quick)
    with open(ns.out, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {ns.out}")


if __name__ == "__main__":
    main()
