"""Benchmark the packed-tensor codec and the batched quantization service.

Measures, per catalog format arm:

* **encode** — original tensor -> ``PackedTensor`` (quantization search
  included, since that is what a cold encode costs);
* **decode** — ``PackedTensor`` -> dequantized float64;
* **footprint** — measured payload bits/element vs the format's nominal
  EBW (and the container's total-with-header bytes).

Plus a service section: per-tensor ``quantize`` calls vs micro-batched
``QuantService.submit`` over a stream of small activation tensors.

Run:  PYTHONPATH=src python scripts/bench_codec.py [--out PATH] [--quick]

Writes ``BENCH_codec.json``. Absolute throughput is machine-dependent;
the footprint columns and the batched-vs-serial ratio are the stable
part.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.codec import PackedTensor, decode, encode
from repro.runner.formats import make_format
from repro.serve import QuantService

DEFAULT_OUT = "BENCH_codec.json"

#: (catalog name, operand path) arms to measure.
ARMS = (
    ("mxfp4", "activation"),
    ("nvfp4", "activation"),
    ("smx4", "activation"),
    ("elem-em", "activation"),
    ("sg-em", "weight"),
    ("m2xfp", "weight"),
    ("m2xfp", "activation"),
    ("m2-nvfp4", "weight"),
)


def _best_time(fn, reps: int) -> float:
    fn()  # warm caches and allocators
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmarks(quick: bool = False) -> dict:
    """Run every codec/service benchmark; returns the payload dict."""
    rng = np.random.default_rng(0)
    rows = 128 if quick else 512
    cols = 1024
    x = rng.standard_normal((rows, cols)) * np.exp(
        0.4 * rng.standard_normal((rows, cols)))
    n = x.size
    reps = 2 if quick else 3

    results: dict[str, dict] = {}
    for name, op in ARMS:
        fmt = make_format(name)
        pt = encode(fmt, x, op=op)
        blob = pt.to_bytes()
        enc_s = _best_time(lambda: encode(fmt, x, op=op), reps)
        dec_s = _best_time(lambda: decode(PackedTensor.from_bytes(blob)), reps)
        nominal = fmt.weight_ebw if op == "weight" else fmt.activation_ebw
        results[f"{name}:{op}"] = {
            "elements": n,
            "encode_s": round(enc_s, 6),
            "decode_s": round(dec_s, 6),
            "encode_elems_per_s": round(n / enc_s, 1),
            "decode_elems_per_s": round(n / dec_s, 1),
            "payload_bits_per_elem": round(pt.bits_per_element, 4),
            "nominal_ebw": round(nominal, 4),
            "total_bytes": pt.total_bytes,
            "header_bytes": pt.header_bytes,
        }

    # --- bitstream: aligned fast paths vs the generic bit expansion ----
    from repro.codec.bitstream import (_pack_bits_generic,
                                       _unpack_bits_generic, pack_bits,
                                       unpack_bits)
    n_fields = 200_000 if quick else 800_000
    for width in (4, 8, 16):
        vals = rng.integers(0, 1 << width, n_fields)
        blob = pack_bits(vals, width)
        raw_bytes = blob.tobytes()
        raw = np.frombuffer(raw_bytes, dtype=np.uint8)
        pack_fast = _best_time(lambda: pack_bits(vals, width), reps)
        pack_gen = _best_time(lambda: _pack_bits_generic(vals, width), reps)
        unpack_fast = _best_time(
            lambda: unpack_bits(raw_bytes, width, n_fields), reps)
        unpack_gen = _best_time(
            lambda: _unpack_bits_generic(raw, width, n_fields), reps)
        results[f"bitstream_w{width}"] = {
            "fields": n_fields,
            "pack_fast_s": round(pack_fast, 6),
            "pack_generic_s": round(pack_gen, 6),
            "unpack_fast_s": round(unpack_fast, 6),
            "unpack_generic_s": round(unpack_gen, 6),
            "pack_fields_per_s": round(n_fields / pack_fast, 1),
            "unpack_fields_per_s": round(n_fields / unpack_fast, 1),
            "speedup_pack": round(pack_gen / pack_fast, 3),
            "speedup_unpack": round(unpack_gen / unpack_fast, 3),
        }

    # --- service: serial vs micro-batched ------------------------------
    n_req = 64 if quick else 256
    tensors = [rng.standard_normal((4, 256)) for _ in range(n_req)]
    fmt = make_format("m2xfp")

    def serial():
        for t in tensors:
            fmt.quantize_activation(t, axis=-1)

    def batched():
        with QuantService(fmt, max_batch=64, max_delay_s=0.05) as svc:
            futs = [svc.submit(t) for t in tensors]
            for f in futs:
                f.result()

    serial_s = _best_time(serial, reps)
    batched_s = _best_time(batched, reps)
    total = sum(t.size for t in tensors)
    results["service_m2xfp_activation"] = {
        "requests": n_req,
        "elements": total,
        "serial_s": round(serial_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(serial_s / batched_s, 3),
        "batched_elems_per_s": round(total / batched_s, 1),
    }
    return {"schema": 1, "quick": bool(quick), "arms": results}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="smaller tensors / fewer reps")
    ns = parser.parse_args()
    payload = run_benchmarks(quick=ns.quick)
    with open(ns.out, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {ns.out}")
    for name, row in payload["arms"].items():
        if "encode_s" in row:
            print(f"  {name:24s} enc {row['encode_elems_per_s']:>12,.0f} e/s  "
                  f"dec {row['decode_elems_per_s']:>12,.0f} e/s  "
                  f"{row['payload_bits_per_elem']:.3f} b/e "
                  f"(nominal {row['nominal_ebw']:.3f})")
        elif "serial_s" in row:
            print(f"  {name:24s} serial {row['serial_s']*1e3:8.1f} ms  "
                  f"batched {row['batched_s']*1e3:8.1f} ms  "
                  f"({row['speedup']:.2f}x)")
        else:
            print(f"  {name:24s} pack {row['pack_fields_per_s']:>13,.0f} f/s "
                  f"({row['speedup_pack']:.1f}x)  "
                  f"unpack {row['unpack_fields_per_s']:>13,.0f} f/s "
                  f"({row['speedup_unpack']:.1f}x)")


if __name__ == "__main__":
    main()
