"""Benchmark the packed-tensor codec and the batched quantization service.

Measures, per catalog format arm:

* **encode** — original tensor -> ``PackedTensor`` (quantization search
  included, since that is what a cold encode costs);
* **decode** — ``PackedTensor`` -> dequantized float64;
* **footprint** — measured payload bits/element vs the format's nominal
  EBW (and the container's total-with-header bytes).

Plus a service section: per-tensor ``quantize`` calls vs micro-batched
``QuantService.submit`` over a stream of small activation tensors, and a
``fused`` section timing the fused quantize→pack encode path against its
``REPRO_NO_FUSED_PACK=1`` fallback (same format, same tensor, same
container bytes — the ratio is what the zero-copy code-space encode
buys).

Run:  PYTHONPATH=src python scripts/bench_codec.py [--out PATH] [--quick]

Writes ``BENCH_codec.json``. Absolute throughput is machine-dependent;
the footprint columns and the batched-vs-serial / fused-vs-unfused
ratios are the stable part.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.codec import FUSED_PACK_ENV, PackedTensor, decode, encode
from repro.runner.formats import make_format
from repro.serve import QuantService

DEFAULT_OUT = "BENCH_codec.json"

#: (catalog name, operand path) arms to measure.
ARMS = (
    ("mxfp4", "activation"),
    ("nvfp4", "activation"),
    ("smx4", "activation"),
    ("elem-em", "activation"),
    ("sg-em", "weight"),
    ("m2xfp", "weight"),
    ("m2xfp", "activation"),
    ("m2-nvfp4", "weight"),
)

#: (catalog name, operand path) arms for the fused-vs-unfused section —
#: formats whose plan executors emit a code-space result.
FUSED_ARMS = (
    ("mxfp4", "activation"),
    ("mxfp6-e2m3", "activation"),
    ("elem-em", "activation"),
    ("sg-em", "weight"),
    ("m2xfp", "weight"),
    ("m2xfp", "activation"),
)


def _best_time(fn, reps: int) -> float:
    fn()  # warm caches and allocators
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmarks(quick: bool = False) -> dict:
    """Run every codec/service benchmark; returns the payload dict."""
    rng = np.random.default_rng(0)
    rows = 128 if quick else 512
    cols = 1024
    x = rng.standard_normal((rows, cols)) * np.exp(
        0.4 * rng.standard_normal((rows, cols)))
    n = x.size
    reps = 2 if quick else 3

    results: dict[str, dict] = {}
    for name, op in ARMS:
        fmt = make_format(name)
        pt = encode(fmt, x, op=op)
        blob = pt.to_bytes()
        enc_s = _best_time(lambda: encode(fmt, x, op=op), reps)
        dec_s = _best_time(lambda: decode(PackedTensor.from_bytes(blob)), reps)
        nominal = fmt.weight_ebw if op == "weight" else fmt.activation_ebw
        results[f"{name}:{op}"] = {
            "elements": n,
            "encode_s": round(enc_s, 6),
            "decode_s": round(dec_s, 6),
            "encode_elems_per_s": round(n / enc_s, 1),
            "decode_elems_per_s": round(n / dec_s, 1),
            "payload_bits_per_elem": round(pt.bits_per_element, 4),
            "nominal_ebw": round(nominal, 4),
            "total_bytes": pt.total_bytes,
            "header_bytes": pt.header_bytes,
        }

    # --- fused quantize→pack vs the REPRO_NO_FUSED_PACK fallback -------
    # Each arm is timed twice per mode: plain encode (pack throughput —
    # where the codec-bound activation formats gain 2-3x and the
    # search-bound weight formats roughly break even), and encode with
    # ``verify=True`` — the serving default, where the fused path's
    # O(bytes) cross-check replaces a full re-quantization and every
    # arm wins. ``speedup_fused_pack`` (the regression-gated ratio) is
    # the verified one; ``speedup_fused_encode_only`` is the plain one.
    fused: dict[str, dict] = {}
    prev = os.environ.get(FUSED_PACK_ENV)
    try:
        for name, op in FUSED_ARMS:
            fmt = make_format(name)
            os.environ.pop(FUSED_PACK_ENV, None)
            fused_s = _best_time(lambda: encode(fmt, x, op=op), reps)
            fused_v = _best_time(
                lambda: encode(fmt, x, op=op, verify=True), reps)
            os.environ[FUSED_PACK_ENV] = "1"
            unfused_s = _best_time(lambda: encode(fmt, x, op=op), reps)
            unfused_v = _best_time(
                lambda: encode(fmt, x, op=op, verify=True), reps)
            fused[f"{name}:{op}"] = {
                "elements": n,
                "fused_encode_s": round(fused_s, 6),
                "unfused_encode_s": round(unfused_s, 6),
                "fused_verified_s": round(fused_v, 6),
                "unfused_verified_s": round(unfused_v, 6),
                "fused_encode_elems_per_s": round(n / fused_s, 1),
                "speedup_fused_pack": round(unfused_v / fused_v, 3),
                "speedup_fused_encode_only": round(unfused_s / fused_s, 3),
            }
    finally:
        if prev is None:
            os.environ.pop(FUSED_PACK_ENV, None)
        else:
            os.environ[FUSED_PACK_ENV] = prev

    # --- bitstream: fast paths vs the generic bit expansion ------------
    from repro.codec.bitstream import (_pack_bits_generic,
                                       _unpack_bits_generic, pack_bits,
                                       unpack_bits)
    # Always full-size: the generic packer's cost is superlinear once
    # its bit-expansion spills cache, so the fast-vs-generic ratio is
    # only comparable against the committed baseline at the same field
    # count (and the whole section costs well under a second). Extra
    # reps even in --quick mode: the byte/uint16 fast paths finish in
    # fractions of a millisecond, where best-of-2 jitter alone can
    # halve a several-hundred-x ratio.
    n_fields = 800_000
    bit_reps = 5
    for width in (3, 4, 5, 6, 8, 16):
        vals = rng.integers(0, 1 << width, n_fields)
        blob = pack_bits(vals, width)
        raw_bytes = blob.tobytes()
        raw = np.frombuffer(raw_bytes, dtype=np.uint8)
        # Generic first: its multi-MB bit-expansion temporaries warm
        # the allocator, so the fast paths measure compute rather than
        # first-touch page faults (which otherwise swing the ratio ~2x
        # between cold --quick runs and a fully-warmed full run).
        pack_gen = _best_time(lambda: _pack_bits_generic(vals, width),
                              bit_reps)
        pack_fast = _best_time(lambda: pack_bits(vals, width), bit_reps)
        unpack_gen = _best_time(
            lambda: _unpack_bits_generic(raw, width, n_fields), bit_reps)
        unpack_fast = _best_time(
            lambda: unpack_bits(raw_bytes, width, n_fields), bit_reps)
        results[f"bitstream_w{width}"] = {
            "fields": n_fields,
            "pack_fast_s": round(pack_fast, 6),
            "pack_generic_s": round(pack_gen, 6),
            "unpack_fast_s": round(unpack_fast, 6),
            "unpack_generic_s": round(unpack_gen, 6),
            "pack_fields_per_s": round(n_fields / pack_fast, 1),
            "unpack_fields_per_s": round(n_fields / unpack_fast, 1),
            "speedup_pack": round(pack_gen / pack_fast, 3),
            "speedup_unpack": round(unpack_gen / unpack_fast, 3),
        }

    # --- service: serial vs micro-batched ------------------------------
    n_req = 64 if quick else 256
    tensors = [rng.standard_normal((4, 256)) for _ in range(n_req)]
    fmt = make_format("m2xfp")

    def serial():
        for t in tensors:
            fmt.quantize_activation(t, axis=-1)

    def batched():
        with QuantService(fmt, max_batch=64, max_delay_s=0.05) as svc:
            futs = [svc.submit(t) for t in tensors]
            for f in futs:
                f.result()

    serial_s = _best_time(serial, reps)
    batched_s = _best_time(batched, reps)
    total = sum(t.size for t in tensors)
    results["service_m2xfp_activation"] = {
        "requests": n_req,
        "elements": total,
        "serial_s": round(serial_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(serial_s / batched_s, 3),
        "batched_elems_per_s": round(total / batched_s, 1),
    }
    return {"schema": 1, "quick": bool(quick), "arms": results,
            "fused": fused}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="smaller tensors / fewer reps")
    ns = parser.parse_args()
    payload = run_benchmarks(quick=ns.quick)
    with open(ns.out, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {ns.out}")
    for name, row in payload["arms"].items():
        if "encode_s" in row:
            print(f"  {name:24s} enc {row['encode_elems_per_s']:>12,.0f} e/s  "
                  f"dec {row['decode_elems_per_s']:>12,.0f} e/s  "
                  f"{row['payload_bits_per_elem']:.3f} b/e "
                  f"(nominal {row['nominal_ebw']:.3f})")
        elif "serial_s" in row:
            print(f"  {name:24s} serial {row['serial_s']*1e3:8.1f} ms  "
                  f"batched {row['batched_s']*1e3:8.1f} ms  "
                  f"({row['speedup']:.2f}x)")
        else:
            print(f"  {name:24s} pack {row['pack_fields_per_s']:>13,.0f} f/s "
                  f"({row['speedup_pack']:.1f}x)  "
                  f"unpack {row['unpack_fields_per_s']:>13,.0f} f/s "
                  f"({row['speedup_unpack']:.1f}x)")
    for name, row in payload["fused"].items():
        print(f"  fused {name:18s} "
              f"{row['fused_encode_elems_per_s']:>12,.0f} e/s  "
              f"(encode {row['speedup_fused_encode_only']:.2f}x, "
              f"verified {row['speedup_fused_pack']:.2f}x vs unfused)")


if __name__ == "__main__":
    main()
