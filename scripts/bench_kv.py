"""Simulated decode-loop benchmark for streaming KV-cache sessions.

Drives the serving workload the session layer exists for: a prefill
block followed by single-token decode steps, each step appending one
quantized K/V block per layer through :class:`~repro.kv.KVCacheSession`
(plan-compiled kernels, packed bytes retained, sliding-window + sink
eviction). Per catalog format it records:

* **tokens/s** — decode positions per second (every position fans out
  to one append per layer, so this is the end-to-end decode rate);
* **appends/s** — per-layer K/V block appends per second;
* **measured bits/elem** — the session's packed payload footprint.

Sessions run with ``verify=True`` — the serving default. On the fused
quantize→pack path that is an O(bytes) unpack-and-compare of every
stream against the executor's code arrays; on the fallback path it is
a full re-quantize against the one-shot batch quantizer — either way
the numbers price the integrity contract, not a fast path the server
never takes. A ``verify_off_tokens_per_s`` column
records what the cross-check costs, and ``stage_s_per_append`` breaks
each append into its quantize / pack / verify stage seconds (from
:func:`repro.codec.collect_encode_stats`, surfaced through
``KVCacheSession.encode_stage_stats``).

The **fused** section re-runs a subset of formats with
``REPRO_NO_FUSED_PACK=1`` — the fallback that re-derives codes from
dequantized floats instead of packing the plan executor's code-space
output — and records the fused-vs-unfused tokens/s ratio.

The **wire** section replays the same decode loop through a live
:class:`~repro.server.ServerThread` over protocol-v3 SESSION frames
(OPEN/APPEND/READ/CLOSE), recording wire tokens/s and the final READ's
bit-exactness against a local session fed identical blocks.

Run:  PYTHONPATH=src python scripts/bench_kv.py [--out PATH] [--quick]

Writes ``BENCH_kv.json``. Absolute rates are machine-dependent; the
regression gate (``scripts/check_bench_regression.py --suite kv``)
validates structure — a fresh run must complete the decode loop with
positive rates and a bit-exact wire replay — rather than raw speed.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.codec import FUSED_PACK_ENV
from repro.kv import KVCacheSession, KVPolicy
from repro.server import QuantClient, ServerThread

DEFAULT_OUT = "BENCH_kv.json"

#: Catalog formats the decode loop is measured under (group-scoped and
#: tensor-scoped both represented).
FORMATS = ("m2xfp", "mxfp4", "elem-em", "sg-em", "nvfp4", "m2-nvfp4")

#: Formats the fused-vs-unfused section re-measures (all plan-compiled
#: with code-space executors, so the knob actually changes the path).
FUSED_FORMATS = ("m2xfp", "mxfp4", "elem-em", "sg-em")

#: The format the over-the-wire section replays.
WIRE_FORMAT = "m2xfp"


def _blocks(rng, *, n_layers, dh, prefill, steps, channel):
    """Prefill + decode K/V blocks, shared across all measured arms."""
    out = []
    for layer in range(n_layers):
        out.append((layer, rng.standard_normal((prefill, dh)) * channel,
                    rng.standard_normal((prefill, dh)) * channel))
    for _ in range(steps):
        for layer in range(n_layers):
            out.append((layer, rng.standard_normal((1, dh)) * channel,
                        rng.standard_normal((1, dh)) * channel))
    return out


def _decode_loop(fmt: str, blocks, *, n_layers, max_tokens, sink_tokens,
                 steps, verify: bool) -> dict:
    """Run one session over the shared blocks; returns the rate row."""
    sess = KVCacheSession(n_layers, KVPolicy(fmt), max_tokens=max_tokens,
                          sink_tokens=sink_tokens, verify=verify)
    n_prefill = n_layers  # one prefill block per layer leads the list
    for layer, k, v in blocks[:n_prefill]:
        sess.append(layer, k, v)
    t0 = time.perf_counter()
    for layer, k, v in blocks[n_prefill:]:
        sess.append(layer, k, v)
    elapsed = time.perf_counter() - t0
    stats = sess.stats()
    stages = sess.encode_stage_stats()
    sess.close()
    appends = n_layers * (1 + steps)  # prefill blocks + decode steps
    return {
        "tokens_per_s": round(steps / elapsed, 1),
        "appends_per_s": round(steps * n_layers / elapsed, 1),
        "decode_wall_s": round(elapsed, 4),
        "measured_bits_per_element": round(
            stats["measured_bits_per_element"], 3),
        "evicted_tokens": stats["evicted_tokens"],
        "verify": verify,
        # Each append encodes one K and one V block.
        "fused_appends": stages["fused_encodes"] // 2,
        "stage_s_per_append": {
            "quantize": round(stages["quantize_s"] / appends, 7),
            "pack": round(stages["pack_s"] / appends, 7),
            "verify": round(stages["verify_s"] / appends, 7),
        },
    }


def run_wire(blocks, *, n_layers, max_tokens, sink_tokens, steps) -> dict:
    """The same decode loop spoken over protocol-v3 session frames."""
    local = KVCacheSession(n_layers, KVPolicy(WIRE_FORMAT),
                           max_tokens=max_tokens, sink_tokens=sink_tokens)
    with ServerThread(port=0) as st, QuantClient(port=st.port) as cli:
        cli.session_open(session_id="bench-kv", n_layers=n_layers,
                         policy=WIRE_FORMAT, max_tokens=max_tokens,
                         sink_tokens=sink_tokens)
        n_prefill = n_layers
        seq = 0
        for layer, k, v in blocks[:n_prefill]:
            cli.session_append("bench-kv", layer, k, v, seq=seq)
            local.append(layer, k, v)
            seq += 1
        t0 = time.perf_counter()
        for layer, k, v in blocks[n_prefill:]:
            cli.session_append("bench-kv", layer, k, v, seq=seq)
            seq += 1
        elapsed = time.perf_counter() - t0
        for layer, k, v in blocks[n_prefill:]:
            local.append(layer, k, v)
        bit_exact = True
        for layer in range(n_layers):
            kw, vw = cli.session_read("bench-kv", layer)
            kl, vl = local.read(layer)
            bit_exact &= (kw.tobytes() == kl.tobytes()
                          and vw.tobytes() == vl.tobytes())
        cli.session_close("bench-kv")
    local.close()
    row = {
        "format": WIRE_FORMAT,
        "tokens_per_s": round(steps / elapsed, 1),
        "appends_per_s": round(steps * n_layers / elapsed, 1),
        "decode_wall_s": round(elapsed, 4),
        "read_bit_exact": bit_exact,
    }
    print(f"  wire {WIRE_FORMAT}: {row['tokens_per_s']:8.1f} tokens/s  "
          f"({row['appends_per_s']:.1f} appends/s, "
          f"read {'bit-exact' if bit_exact else 'MISMATCH'})")
    if not bit_exact:
        raise RuntimeError("wire session READ diverged from the local "
                           "session fed identical blocks")
    return row


def run_benchmarks(quick: bool = False) -> dict:
    """Per-format decode loops plus the wire replay; returns the payload."""
    rng = np.random.default_rng(0)
    n_layers, dh = 4, 64
    prefill = 16
    steps = 32 if quick else 192
    max_tokens, sink_tokens = 128, 8
    channel = np.exp(0.3 * rng.standard_normal(dh))
    channel[rng.choice(dh, 2, replace=False)] *= 12.0
    blocks = _blocks(np.random.default_rng(1), n_layers=n_layers, dh=dh,
                     prefill=prefill, steps=steps, channel=channel)
    payload: dict = {
        "config": {
            "n_layers": n_layers,
            "d_head": dh,
            "prefill_tokens": prefill,
            "decode_steps": steps,
            "max_tokens": max_tokens,
            "sink_tokens": sink_tokens,
            "quick": quick,
        },
        "decode_loop": {},
        "wire": {},
        "fused": {},
    }
    kw = dict(n_layers=n_layers, max_tokens=max_tokens,
              sink_tokens=sink_tokens, steps=steps)
    for fmt in FORMATS:
        row = _decode_loop(fmt, blocks, verify=True, **kw)
        row["verify_off_tokens_per_s"] = _decode_loop(
            fmt, blocks, verify=False, **kw)["tokens_per_s"]
        payload["decode_loop"][fmt] = row
        print(f"  {fmt:10s} {row['tokens_per_s']:8.1f} tokens/s verified "
              f"({row['verify_off_tokens_per_s']:8.1f} unverified)  "
              f"{row['measured_bits_per_element']:5.2f} bits/elem")

    # --- fused quantize→pack vs the REPRO_NO_FUSED_PACK fallback -------
    prev = os.environ.get(FUSED_PACK_ENV)
    try:
        for fmt in FUSED_FORMATS:
            os.environ.pop(FUSED_PACK_ENV, None)
            f_tps = max(_decode_loop(fmt, blocks, verify=True,
                                     **kw)["tokens_per_s"]
                        for _ in range(2))
            os.environ[FUSED_PACK_ENV] = "1"
            u_tps = max(_decode_loop(fmt, blocks, verify=True,
                                     **kw)["tokens_per_s"]
                        for _ in range(2))
            payload["fused"][fmt] = {
                "tokens_per_s": f_tps,
                "unfused_tokens_per_s": u_tps,
                "speedup_fused_pack": round(f_tps / u_tps, 3),
            }
            print(f"  fused {fmt:10s} {f_tps:8.1f} tokens/s  "
                  f"unfused {u_tps:8.1f}  "
                  f"({payload['fused'][fmt]['speedup_fused_pack']:.2f}x)")
    finally:
        if prev is None:
            os.environ.pop(FUSED_PACK_ENV, None)
        else:
            os.environ[FUSED_PACK_ENV] = prev

    payload["wire"] = run_wire(blocks, **kw)
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="fewer decode steps")
    ns = parser.parse_args()
    payload = run_benchmarks(quick=ns.quick)
    with open(ns.out, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {ns.out}")


if __name__ == "__main__":
    main()
