"""Regenerate the golden quantization vectors pinned by tier-1 tests.

Run:  PYTHONPATH=src python scripts/regen_golden_vectors.py --regen

Writes ``tests/golden/quant_vectors.json``: adversarial inputs and their
expected codes / decoded values for every scalar spec, every catalog
tensor format, and the M2XFP metadata encodings (Elem-EM top-k codes,
Sg-EM subgroup multiplier codes). ``tests/test_golden_vectors.py``
recomputes the outputs from the committed inputs on every suite run and
fails on any bit-level drift, under all three kernel dispatch modes.

All floats are serialized with ``float.hex()`` so the file pins exact
bit patterns, not decimal approximations. Only regenerate after an
*intentional* encoding change, and call the change out in the PR.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import elem_em_encode, sg_em_encode  # noqa: E402
from repro.formats.registry import SCALAR_FORMATS  # noqa: E402
from repro.runner.formats import FORMAT_REGISTRY, make_format  # noqa: E402

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / "quant_vectors.json"

#: Formats excluded from the tensor section (identity reference).
TENSOR_EXCLUDE = {"fp16"}


def hexlist(a: np.ndarray) -> list[str]:
    return [float(v).hex() for v in np.asarray(a, dtype=np.float64).ravel()]


def intlist(a: np.ndarray) -> list[int]:
    return [int(v) for v in np.asarray(a).ravel()]


def scalar_input(spec) -> np.ndarray:
    """Adversarial scalar vector: ties, subnormal edges, saturation.

    Low-bit grids are covered exhaustively; the FP16/BF16 reference
    grids (tens of thousands of codes) are subsampled to keep the
    committed file small while still spanning every binade.
    """
    grid = spec.grid
    if grid.shape[0] > 512:
        idx = np.unique(np.linspace(0, grid.shape[0] - 1, 96).astype(int))
        grid = grid[idx]
    midpoints = 0.5 * (grid[:-1] + grid[1:])        # exact RTNE tie points
    near = np.concatenate([midpoints * (1 - 1e-9), midpoints * (1 + 1e-9)])
    edges = np.array([0.0, -0.0, spec.min_subnormal / 2, spec.min_subnormal,
                      spec.max_value, spec.max_value * 1.0001,
                      spec.max_value * 16.0, 2.0 ** -30])
    rng = np.random.default_rng(2026)
    random = rng.standard_normal(48) * np.exp2(
        rng.integers(-6, 7, 48).astype(np.float64))
    x = np.concatenate([edges, grid, midpoints, near, random])
    return np.concatenate([x, -x])


def tensor_input(group_size: int) -> np.ndarray:
    """Adversarial (4, 64) tensor: outliers, ties, an all-zero group."""
    rng = np.random.default_rng(777)
    x = rng.standard_normal((4, 64))
    x *= np.exp2(rng.integers(-4, 5, size=x.shape).astype(np.float64))
    x[0, 5] = 96.0                 # group outlier
    x[1, :group_size] = 0.0        # an all-zero group
    x[2, ::7] = 0.75               # repeated exact tie candidates
    x[3, -1] = -2.0 ** -20         # deep subnormal territory
    return x


def metadata_input() -> np.ndarray:
    """(4, 32) groups exercising top-k selection and multiplier choice."""
    rng = np.random.default_rng(424242)
    g = rng.standard_normal((4, 32)) * np.exp2(
        rng.integers(-3, 4, size=(4, 32)).astype(np.float64))
    g[0, 3] = 48.0                 # dominant top-1
    g[1, 0] = g[1, 1] = 7.5        # exact tie inside one subgroup
    g[2, :] = np.abs(g[2, :])      # all-positive group
    return g


def build_payload() -> dict:
    payload: dict = {
        "_": "Golden quantization vectors; regenerate ONLY via "
             "scripts/regen_golden_vectors.py --regen (see its docstring).",
        "scalar": {},
        "tensor": {},
        "metadata": {},
    }
    for name, spec in sorted(SCALAR_FORMATS.items()):
        x = scalar_input(spec)
        sign, mag = spec.encode(x)
        payload["scalar"][name] = {
            "input_hex": hexlist(x),
            "sign": intlist(sign),
            "mag": intlist(mag),
            "decoded_hex": hexlist(spec.decode(sign, mag)),
        }
    for name in sorted(set(FORMAT_REGISTRY) - TENSOR_EXCLUDE):
        fmt = make_format(name)
        x = tensor_input(int(getattr(fmt, "group_size", 32) or 32))
        payload["tensor"][name] = {
            "shape": list(x.shape),
            "input_hex": hexlist(x),
            "weight_hex": hexlist(fmt.quantize_weight(x, axis=-1)),
            "activation_hex": hexlist(fmt.quantize_activation(x, axis=-1)),
        }
    g = metadata_input()
    ee = elem_em_encode(g, sub_size=8, top_k=1, scale_rule="floor")
    payload["metadata"]["elem_em"] = {
        "shape": list(g.shape), "input_hex": hexlist(g),
        "sub_size": 8, "top_k": 1, "scale_rule": "floor",
        "sign": intlist(ee.sign_codes), "mag": intlist(ee.mag_codes),
        "scale_exponents": intlist(ee.scale_exponents),
        "meta": intlist(ee.metadata),
    }
    se = sg_em_encode(g, sub_size=8, adaptive=True, scale_rule="floor")
    payload["metadata"]["sg_em"] = {
        "shape": list(g.shape), "input_hex": hexlist(g),
        "sub_size": 8, "adaptive": True, "scale_rule": "floor",
        "sign": intlist(se.sign_codes), "mag": intlist(se.mag_codes),
        "scale_exponents": intlist(se.scale_exponents),
        "sg_codes": intlist(se.sg_codes),
    }
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regen", action="store_true",
                        help="rewrite tests/golden/quant_vectors.json")
    args = parser.parse_args(argv)
    payload = build_payload()
    text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    if args.regen:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(text)
        print(f"wrote {GOLDEN_PATH}")
        return 0
    if not GOLDEN_PATH.exists():
        print(f"{GOLDEN_PATH} missing; run with --regen", file=sys.stderr)
        return 1
    if GOLDEN_PATH.read_text() != text:
        print("golden vectors DIFFER from current encodings; "
              "run with --regen only if the change is intentional",
              file=sys.stderr)
        return 1
    print("golden vectors match current encodings")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
