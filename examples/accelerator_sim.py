"""Drive the accelerator model: area table, Fig. 13 bars, PE bit-accuracy.

Run:  python examples/accelerator_sim.py
"""

import numpy as np

from repro.accel import (CoreAreaModel, PETile, PETileInputs,
                         fig13_comparison, speedup_vs)


def main() -> None:
    # Tbl. 5: component area/power at 28 nm.
    model = CoreAreaModel()
    print("component                 area(mm2)   power(mW)")
    for c in model.components():
        print(f"{c.name:24s} x{c.count:3d} {c.total_area_mm2:9.4f} {c.total_power_mw:10.3f}")
    print(f"{'Total':29s}{model.total_area_mm2:9.3f} {model.total_power_mw:10.2f}\n")

    # Fig. 13: normalized latency/energy on the six LLM workloads.
    grid = fig13_comparison()
    print("workload     " + "".join(f"{n:>14s}" for n in
                                    ("mx-olive", "mx-ant", "mx-m-ant",
                                     "microscopiq", "m2xfp")))
    for wl, points in grid.items():
        by = {p.accelerator: p for p in points}
        cells = "".join(f"  L{by[n].norm_latency:.2f}/E{by[n].norm_energy:.2f}"
                        for n in ("mx-olive", "mx-ant", "mx-m-ant",
                                  "microscopiq", "m2xfp"))
        print(f"{wl:12s}{cells}")
    speedup, energy = speedup_vs(grid["average"])
    print(f"\nM2XFP vs MicroScopiQ: {speedup:.2f}x speedup, "
          f"{energy:.2f}x energy (paper: 1.91x / 1.75x)")

    # The PE tile is bit-exact against the algorithmic reference.
    pe = PETile()
    rng = np.random.default_rng(1)
    worst = 0.0
    for _ in range(1000):
        inp = PETileInputs(w_codes=rng.integers(0, 16, 8),
                           x_codes=rng.integers(0, 16, 8),
                           x_meta=int(rng.integers(0, 4)),
                           sg_code=int(rng.integers(0, 4)),
                           w_exp=int(rng.integers(-12, 12)),
                           x_exp=int(rng.integers(-12, 12)))
        worst = max(worst, abs(pe.multiply_accumulate(inp) - pe.reference(inp)))
    print(f"PE fixed-point vs float reference, worst error over 1000 "
          f"subgroups: {worst}")


if __name__ == "__main__":
    main()
