"""Regenerate every table and figure of the paper in one run.

Run:  python examples/reproduce_all.py [--full]

Fast mode (default) uses reduced evaluation sizes; ``--full`` uses the
profile-default sizes recorded in EXPERIMENTS.md.
"""

import sys
import time

from repro.experiments import list_experiments, run_experiment


def main(fast: bool = True) -> None:
    for exp_id in list_experiments():
        t0 = time.time()
        result = run_experiment(exp_id, fast=fast)
        print(result.render())
        print(f"[{exp_id} took {time.time() - t0:.1f}s]\n")


if __name__ == "__main__":
    main(fast="--full" not in sys.argv)
