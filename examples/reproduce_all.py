"""Regenerate every table and figure of the paper in one run.

Run:  python examples/reproduce_all.py [--full] [--jobs N]

Thin shell over the sharded runner (``repro.runner``): experiments are
executed ``--jobs``-wide in worker processes, each result lands both on
stdout and as a JSON artifact pair under ``results/`` (``<exp_id>.json``
deterministic payload, ``<exp_id>.meta.json`` timings/provenance), and
completed runs are served from the content-addressed cache under
``results/cache/`` on the next invocation. Equivalent to
``python -m repro run all [--full] [--jobs N]`` — all ``run`` options
are accepted and parsed by the runner's own CLI.

Fast mode (default) uses reduced evaluation sizes; ``--full`` uses the
profile-default sizes recorded in EXPERIMENTS.md.
"""

import sys

from repro.runner.cli import main as cli_main


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    return cli_main(["run", "all", *args])


if __name__ == "__main__":
    raise SystemExit(main())
