"""Reproduce the Sec. 4 design space exploration on one model profile.

Sweeps the four metadata strategies across subgroup sizes under fixed and
adaptive shared scales, then prints the Pareto frontier — the analysis
that motivates the hybrid M2XFP design.

Run:  python examples/dse_explore.py
"""

from repro.dse import explore, pareto_front
from repro.models import load_runtime


def main() -> None:
    rt = load_runtime("llama2-7b", n_seq=8, seq_len=64)
    print(f"profile {rt.profile.display_name}, FP16 ppl {rt.fp16_ppl:.2f}\n")
    for adaptive in (False, True):
        mode = "adaptive" if adaptive else "fixed"
        print(f"--- {mode} shared scale ---")
        curves = explore(rt, adaptive=adaptive, sub_sizes=(16, 8, 4))
        all_points = [p for pts in curves.values() for p in pts]
        for kind, pts in curves.items():
            for p in pts:
                print(f"  {p.label:28s} ebw={p.ebw:5.3f} mse={p.mse:.4f}")
        print("  Pareto frontier:")
        for p in pareto_front(all_points):
            print(f"    {p.label:26s} ebw={p.ebw:5.3f} mse={p.mse:.4f}")
        print()


if __name__ == "__main__":
    main()
