"""Extending M2XFP to attention and the KV cache (paper Sec. 6.4).

K and V are right-hand GEMM operands (P = Q K^T, O = P V) and can adopt a
lazy quantization policy, so they take the weight-side Sg-EM format; Q and
P are produced online and take the activation-side Elem-EM format. This
example measures attention-output error of that split against uniform
MXFP4 on synthetic attention tensors with outlier channels.

Run:  python examples/kv_cache.py
"""

import numpy as np

from repro.core import ElemEM, SgEM
from repro.models.layers import softmax
from repro.mx import MXFP4


def attention(q, k, v):
    scores = softmax(q @ k.T / np.sqrt(q.shape[-1]))
    return scores @ v


def main() -> None:
    rng = np.random.default_rng(7)
    seq, dh = 128, 64
    channel = np.exp(0.3 * rng.standard_normal(dh))
    channel[rng.choice(dh, 2, replace=False)] *= 12.0  # outlier channels
    q = rng.standard_normal((seq, dh)) * channel
    k = rng.standard_normal((seq, dh)) * channel
    v = rng.standard_normal((seq, dh)) * channel
    ref = attention(q, k, v)

    elem_em, sg_em, mxfp4 = ElemEM(), SgEM(), MXFP4()

    def m2xfp_attention():
        # Sg-EM on the cached K/V (lazy, offline-style); Elem-EM on Q and
        # on the attention probabilities P (produced online).
        kq = sg_em.quantize_weight(k)
        vq = sg_em.quantize_weight(v)
        qq = elem_em.quantize_activation(q)
        p = softmax(qq @ kq.T / np.sqrt(dh))
        return elem_em.quantize_activation(p) @ vq

    def mxfp4_attention():
        p = softmax(mxfp4.quantize(q) @ mxfp4.quantize(k).T / np.sqrt(dh))
        return mxfp4.quantize(p) @ mxfp4.quantize(v)

    denom = np.mean(ref ** 2)
    err_m2 = np.mean((m2xfp_attention() - ref) ** 2) / denom
    err_mx = np.mean((mxfp4_attention() - ref) ** 2) / denom
    print(f"attention output relative MSE")
    print(f"  MXFP4 everywhere     : {err_mx:.5f}")
    print(f"  M2XFP KV-cache split : {err_m2:.5f}")
    print(f"  improvement          : {err_mx / err_m2:.2f}x")


if __name__ == "__main__":
    main()
