"""Streaming KV-cache quantization (paper Sec. 6.4).

K and V are right-hand GEMM operands (P = Q K^T, O = P V) cached across
decode steps, so they take the lazy weight-side path. The default mode
drives the **streaming session API** the serving stack exposes: a
:class:`repro.kv.KVCacheSession` appends one quantized K/V block per
decode step through the plan-compiled kernels, retains only packed
bytes, and evicts by token budget while keeping the first
``sink_tokens`` positions (attention sinks). Every append cross-checks
its packed bytes against the one-shot batch quantizer, so the streamed
cache is bit-exact by construction; the example then measures
attention-output error of the paper's per-layer policy against uniform
MXFP4 over the *retained* window, plus the measured packed footprint
against FP16.

``--static`` runs the original one-shot comparison (no session, whole
cache quantized in one batch) for the same accuracy/footprint story.

Both modes share one :class:`~repro.kv.KVPolicy`'s format objects, so
group geometry is derived once and every repeated (shape, op) pair
after the first is a compiled-plan cache hit — the decode loop runs on
cached plans, not per-step replanning.

Run:  python examples/kv_cache.py [--static]
"""

import argparse

import numpy as np

from repro.codec import decode
from repro.kv import KVCacheSession, KVPolicy
from repro.models.layers import softmax
from repro.plan.cache import plan_cache_stats
from repro.serve import QuantService


def attention(q, k, v):
    scores = softmax(q @ k.T / np.sqrt(q.shape[-1]))
    return scores @ v


def _channelled(rng, shape, channel):
    return rng.standard_normal(shape) * channel


# ----------------------------------------------------------------------
# Streaming mode: a simulated decode loop over KV sessions
# ----------------------------------------------------------------------
def _decode_loop(policy, rng, *, n_layers, dh, channel, prefill, steps,
                 max_tokens, sink_tokens):
    """Run one session through prefill + decode; returns it + raw blocks."""
    sess = KVCacheSession(n_layers, policy, max_tokens=max_tokens,
                          sink_tokens=sink_tokens)
    raw = {}   # (layer, start) -> raw (k, v) block, for the error check
    for layer in range(n_layers):
        k = _channelled(rng, (prefill, dh), channel)
        v = _channelled(rng, (prefill, dh), channel)
        ack = sess.append(layer, k, v)
        raw[(layer, ack["start"])] = (k, v)
    for _ in range(steps):
        for layer in range(n_layers):
            k = _channelled(rng, (1, dh), channel)
            v = _channelled(rng, (1, dh), channel)
            ack = sess.append(layer, k, v)
            raw[(layer, ack["start"])] = (k, v)
    return sess, raw


def _retained_raw(sess, raw, layer):
    ks, vs = zip(*(raw[(layer, start)]
                   for start, _ in sess.positions(layer)))
    return np.concatenate(ks, axis=0), np.concatenate(vs, axis=0)


def streaming_main() -> None:
    rng = np.random.default_rng(7)
    n_layers, dh = 4, 64
    prefill, steps = 16, 120
    max_tokens, sink_tokens = 96, 8
    channel = np.exp(0.3 * rng.standard_normal(dh))
    channel[rng.choice(dh, 2, replace=False)] *= 12.0  # outlier channels

    before = plan_cache_stats()
    policies = {
        "m2xfp": KVPolicy("m2xfp", overrides={0: "elem-em"}),
        "mxfp4": KVPolicy("mxfp4"),
    }
    results = {}
    for name, policy in policies.items():
        sess, raw = _decode_loop(
            policy, np.random.default_rng(11), n_layers=n_layers, dh=dh,
            channel=channel, prefill=prefill, steps=steps,
            max_tokens=max_tokens, sink_tokens=sink_tokens)
        q = _channelled(np.random.default_rng(13), (32, dh), channel)
        errs = []
        for layer in range(n_layers):
            kq, vq = sess.read(layer)
            kr, vr = _retained_raw(sess, raw, layer)
            assert kq.shape == kr.shape      # same retained window
            ref = attention(q, kr, vr)
            got = attention(q, kq, vq)
            errs.append(np.mean((got - ref) ** 2) / np.mean(ref ** 2))
        results[name] = (float(np.mean(errs)), sess.stats())
        sess.close()

    total = prefill + steps
    held = results["m2xfp"][1]["tokens_held"][0]
    print(f"streaming KV sessions: {n_layers} layers, {total} positions "
          f"appended, budget {max_tokens} (+{sink_tokens} sink)")
    print(f"  retained window      : {held} tokens "
          f"(evicted {results['m2xfp'][1]['evicted_tokens'] // n_layers} "
          f"per layer, sinks kept)")
    print(f"attention output relative MSE over the retained window")
    err_m2, err_mx = results["m2xfp"][0], results["mxfp4"][0]
    print(f"  MXFP4 everywhere     : {err_mx:.5f}")
    print(f"  M2XFP session policy : {err_m2:.5f}")
    print(f"  improvement          : {err_mx / err_m2:.2f}x")

    stats = results["m2xfp"][1]
    n = stats["packed_elements"]
    fp16_bytes = n * 2
    print(f"\npacked session payload (K+V, all layers, every append)")
    print(f"  fp16                 : {fp16_bytes:8d} B")
    print(f"  packed payload       : {stats['payload_bytes']:8d} B "
          f"({stats['measured_bits_per_element']:.2f} bits/elem, "
          f"{fp16_bytes / stats['payload_bytes']:.2f}x smaller)")
    print(f"  container headers    : {stats['header_bytes']:8d} B over "
          f"{2 * stats['appends']} per-step containers (amortizes with "
          f"block size;\n{'':25s}single-token decode steps are the "
          f"worst case)")

    after = plan_cache_stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    print(f"\ncompiled-plan cache over the decode loop: {hits} hits / "
          f"{misses} misses (geometry derived once per shape, not "
          f"per step)")
    assert hits > misses, "the decode loop should run on cached plans"


# ----------------------------------------------------------------------
# Static mode: the original one-shot accuracy/footprint comparison
# ----------------------------------------------------------------------
def packed_kv_footprint(name, k, v):
    """Pack K and V under a catalog format; return (bytes, bits/elem)."""
    with QuantService(name, packed=True) as svc:
        pk = svc.quantize(k, op="weight")
        pv = svc.quantize(v, op="weight")
        stats = svc.stats()
    # The packed cache must reproduce the simulated quantizers exactly.
    fmt_k = decode(pk)
    assert fmt_k.shape == k.shape
    return (pk.total_bytes + pv.total_bytes,
            stats["measured_bits_per_element"], (pk, pv))


def static_main() -> None:
    rng = np.random.default_rng(7)
    seq, dh = 128, 64
    channel = np.exp(0.3 * rng.standard_normal(dh))
    channel[rng.choice(dh, 2, replace=False)] *= 12.0  # outlier channels
    q = _channelled(rng, (seq, dh), channel)
    k = _channelled(rng, (seq, dh), channel)
    v = _channelled(rng, (seq, dh), channel)
    ref = attention(q, k, v)

    # One policy owns the format objects: repeated quantize calls below
    # reuse its cached group geometry through the compiled-plan cache.
    policy = KVPolicy("sg-em", overrides={-1: "elem-em"})
    sg_em = policy.format_for(0)
    elem_em = policy.format_for(-1)
    mxfp4 = KVPolicy("mxfp4").format_for(0)

    def m2xfp_attention():
        # Sg-EM on the cached K/V (lazy, offline-style); Elem-EM on Q and
        # on the attention probabilities P (produced online).
        kq = sg_em.quantize_weight(k)
        vq = sg_em.quantize_weight(v)
        qq = elem_em.quantize_activation(q)
        p = softmax(qq @ kq.T / np.sqrt(dh))
        return elem_em.quantize_activation(p) @ vq

    def mxfp4_attention():
        p = softmax(mxfp4.quantize(q) @ mxfp4.quantize(k).T / np.sqrt(dh))
        return mxfp4.quantize(p) @ mxfp4.quantize(v)

    denom = np.mean(ref ** 2)
    err_m2 = np.mean((m2xfp_attention() - ref) ** 2) / denom
    err_mx = np.mean((mxfp4_attention() - ref) ** 2) / denom
    print(f"attention output relative MSE")
    print(f"  MXFP4 everywhere     : {err_mx:.5f}")
    print(f"  M2XFP KV-cache split : {err_m2:.5f}")
    print(f"  improvement          : {err_mx / err_m2:.2f}x")

    # ------------------------------------------------------------------
    # Packed KV-cache memory footprint (the part that lives in DRAM)
    # ------------------------------------------------------------------
    n = 2 * seq * dh
    fp16_bytes = n * 2
    print(f"\npacked KV-cache footprint ({seq} positions x {dh} dims, K+V)")
    print(f"  {'format':12s} {'bytes':>8s} {'bits/elem':>10s} "
          f"{'nominal':>8s} {'vs fp16':>8s}")
    print(f"  {'fp16':12s} {fp16_bytes:8d} {16.0:10.2f} {16.0:8.2f} "
          f"{1.0:7.2f}x")
    for name, nominal in (("sg-em", sg_em.ebw), ("mxfp4", mxfp4.ebw)):
        total, bits, (pk, pv) = packed_kv_footprint(name, k, v)
        # Bit-exactness of the packed cache against the simulated path.
        check = sg_em if name == "sg-em" else mxfp4
        assert decode(pk).tobytes() == check.quantize_weight(k).tobytes()
        print(f"  {name:12s} {total:8d} {bits:10.2f} {nominal:8.2f} "
              f"{fp16_bytes / total:7.2f}x")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--static", action="store_true",
                        help="one-shot batch comparison instead of the "
                             "streaming session decode loop")
    ns = parser.parse_args()
    static_main() if ns.static else streaming_main()


if __name__ == "__main__":
    main()
