"""Extending M2XFP to attention and the KV cache (paper Sec. 6.4).

K and V are right-hand GEMM operands (P = Q K^T, O = P V) and can adopt a
lazy quantization policy, so they take the weight-side Sg-EM format; Q and
P are produced online and take the activation-side Elem-EM format. This
example measures attention-output error of that split against uniform
MXFP4 on synthetic attention tensors with outlier channels.

The second half makes the *memory* side of the claim concrete: the KV
cache is the tensor that actually lives in DRAM between decode steps, so
it is packed through ``repro.codec`` (via the batched
``repro.serve.QuantService``) and the measured bytes-per-element is
compared against FP16 and against each format's nominal EBW. The packed
cache decodes bit-exactly to what the simulated quantizers produce — the
accuracy numbers above and the footprint numbers below describe the same
tensors.

Run:  python examples/kv_cache.py
"""

import numpy as np

from repro.codec import decode
from repro.core import ElemEM, SgEM
from repro.models.layers import softmax
from repro.mx import MXFP4
from repro.serve import QuantService


def attention(q, k, v):
    scores = softmax(q @ k.T / np.sqrt(q.shape[-1]))
    return scores @ v


def packed_kv_footprint(name, k, v):
    """Pack K and V under a catalog format; return (bytes, bits/elem)."""
    with QuantService(name, packed=True) as svc:
        pk = svc.quantize(k, op="weight")
        pv = svc.quantize(v, op="weight")
        stats = svc.stats()
    # The packed cache must reproduce the simulated quantizers exactly.
    fmt_k = decode(pk)
    assert fmt_k.shape == k.shape
    return (pk.total_bytes + pv.total_bytes,
            stats["measured_bits_per_element"], (pk, pv))


def main() -> None:
    rng = np.random.default_rng(7)
    seq, dh = 128, 64
    channel = np.exp(0.3 * rng.standard_normal(dh))
    channel[rng.choice(dh, 2, replace=False)] *= 12.0  # outlier channels
    q = rng.standard_normal((seq, dh)) * channel
    k = rng.standard_normal((seq, dh)) * channel
    v = rng.standard_normal((seq, dh)) * channel
    ref = attention(q, k, v)

    elem_em, sg_em, mxfp4 = ElemEM(), SgEM(), MXFP4()

    def m2xfp_attention():
        # Sg-EM on the cached K/V (lazy, offline-style); Elem-EM on Q and
        # on the attention probabilities P (produced online).
        kq = sg_em.quantize_weight(k)
        vq = sg_em.quantize_weight(v)
        qq = elem_em.quantize_activation(q)
        p = softmax(qq @ kq.T / np.sqrt(dh))
        return elem_em.quantize_activation(p) @ vq

    def mxfp4_attention():
        p = softmax(mxfp4.quantize(q) @ mxfp4.quantize(k).T / np.sqrt(dh))
        return mxfp4.quantize(p) @ mxfp4.quantize(v)

    denom = np.mean(ref ** 2)
    err_m2 = np.mean((m2xfp_attention() - ref) ** 2) / denom
    err_mx = np.mean((mxfp4_attention() - ref) ** 2) / denom
    print(f"attention output relative MSE")
    print(f"  MXFP4 everywhere     : {err_mx:.5f}")
    print(f"  M2XFP KV-cache split : {err_m2:.5f}")
    print(f"  improvement          : {err_mx / err_m2:.2f}x")

    # ------------------------------------------------------------------
    # Packed KV-cache memory footprint (the part that lives in DRAM)
    # ------------------------------------------------------------------
    n = 2 * seq * dh
    fp16_bytes = n * 2
    print(f"\npacked KV-cache footprint ({seq} positions x {dh} dims, K+V)")
    print(f"  {'format':12s} {'bytes':>8s} {'bits/elem':>10s} "
          f"{'nominal':>8s} {'vs fp16':>8s}")
    print(f"  {'fp16':12s} {fp16_bytes:8d} {16.0:10.2f} {16.0:8.2f} "
          f"{1.0:7.2f}x")
    for name, nominal in (("sg-em", SgEM().ebw), ("mxfp4", MXFP4().ebw)):
        total, bits, (pk, pv) = packed_kv_footprint(name, k, v)
        # Bit-exactness of the packed cache against the simulated path.
        check = sg_em if name == "sg-em" else mxfp4
        assert decode(pk).tobytes() == check.quantize_weight(k).tobytes()
        print(f"  {name:12s} {total:8d} {bits:10.2f} {nominal:8.2f} "
              f"{fp16_bytes / total:7.2f}x")


if __name__ == "__main__":
    main()
