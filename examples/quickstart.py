"""Quickstart: quantize a tensor with M2XFP and compare against MXFP4/NVFP4.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import M2XFP, MXFP4, NVFP4
from repro.core import elem_em_encode, pack_elem_em
from repro.models.tensors import OutlierSpec, outlier_matrix


def main() -> None:
    rng = np.random.default_rng(0)
    # An LLM-like weight matrix: light-tailed bulk + rare extreme channels.
    w = outlier_matrix(256, 512, OutlierSpec(outlier_rate=0.01,
                                             outlier_scale=16.0), rng)

    print("format          EBW   relative MSE")
    for fmt in (MXFP4(), NVFP4(), M2XFP()):
        dq = fmt.quantize_weight(w, axis=-1)
        mse = np.mean((dq - w) ** 2) / np.mean(w ** 2)
        print(f"{fmt.name:14s} {fmt.ebw:5.3f}   {mse:.5f}")

    # The activation path is Algorithm 1: online, bit-exact, packable.
    acts = rng.standard_normal((4, 32)) * 3
    enc = elem_em_encode(acts, sub_size=8)
    packed = pack_elem_em(enc)
    print(f"\npacked activation tensor: {packed.total_bytes} bytes "
          f"({packed.bits_per_element} bits/element)")
    print(f"metadata stream: {packed.metadata.tobytes().hex()}")


if __name__ == "__main__":
    main()
