"""Quantize a synthetic LLM profile W4A4 and report perplexity per format.

This is the Tbl. 3 pipeline in miniature: a calibrated teacher model, an
evaluation corpus sampled from it, and each format's measured perplexity.

Run:  python examples/llm_quantization.py [profile-key]
"""

import sys

from repro import M2XFP, MXFP4, NVFP4, SMX4
from repro.algos import MicroScopiQ, MXAnt
from repro.eval import quantized_perplexity
from repro.models import load_runtime


def main(profile_key: str = "llama2-7b") -> None:
    print(f"calibrating {profile_key} (FP16 perplexity anchored to paper)...")
    rt = load_runtime(profile_key)
    print(f"FP16 perplexity: {rt.fp16_ppl:.3f} "
          f"(target {rt.profile.target_ppl})\n")
    formats = {"smx4": SMX4(), "mxfp4": MXFP4(), "mx-ant": MXAnt(),
               "microscopiq": MicroScopiQ(), "nvfp4": NVFP4(),
               "m2xfp": M2XFP()}
    print("format        EBW    perplexity   delta-nll")
    import math
    for name, fmt in formats.items():
        ppl = quantized_perplexity(rt, fmt)
        print(f"{name:12s} {fmt.ebw:5.3f}   {ppl:8.3f}   "
              f"{math.log(ppl / rt.fp16_ppl):+.4f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama2-7b")
